//! MPI groups.
//!
//! A group is an ordered set of process references. Two storage schemes are
//! provided, mirroring the sparse-group work the paper cites (\[24\], \[25\])
//! and notes its prototype can exploit:
//!
//! * **dense**: one entry per member;
//! * **range-compressed**: strided ranges over a shared base table —
//!   `MPI_Group_range_incl`-shaped subsets of a large job cost O(#ranges)
//!   memory instead of O(#members).
//!
//! Groups are immutable and cheaply cloneable.

use crate::error::{ErrClass, MpiError, Result};
use pmix::ProcId;
use simnet::EndpointId;
use std::sync::Arc;

/// A resolved process reference: identity plus fabric address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcRef {
    /// PMIx identity.
    pub proc: ProcId,
    /// Fabric endpoint (how the PML reaches it).
    pub endpoint: EndpointId,
}

/// A strided inclusive range over a base table: `first..=last` step
/// `stride` (stride may be negative, as in `MPI_Group_range_incl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeStride {
    /// First base index.
    pub first: i64,
    /// Last base index (inclusive bound in stride steps).
    pub last: i64,
    /// Step (non-zero; negative walks downward).
    pub stride: i64,
}

impl RangeStride {
    fn len(&self) -> usize {
        if self.stride > 0 && self.last >= self.first {
            ((self.last - self.first) / self.stride + 1) as usize
        } else if self.stride < 0 && self.last <= self.first {
            ((self.first - self.last) / (-self.stride) + 1) as usize
        } else {
            0
        }
    }

    fn nth(&self, i: usize) -> i64 {
        self.first + self.stride * i as i64
    }
}

#[derive(Debug, Clone)]
enum Storage {
    Dense(Arc<[ProcRef]>),
    Ranges { base: Arc<[ProcRef]>, ranges: Arc<[RangeStride]>, len: usize },
}

/// An immutable, ordered set of processes (`MPI_Group`).
///
/// Groups obtained from a session (`MPI_Group_from_session_pset`) are bound
/// to their MPI process so that `Comm::create_from_group` — whose standard
/// signature takes only the group and a string tag — can find the library
/// instance. Set-operation results inherit the binding.
#[derive(Clone)]
pub struct MpiGroup {
    storage: Storage,
    process: Option<std::sync::Arc<crate::instance::MpiProcess>>,
    /// Whether the originating session was lazily initialized (fence-free
    /// init): communicators built from this group resolve peer endpoints
    /// on demand instead of requiring them up front. Inherited by set-op
    /// results, like the process binding.
    lazy: bool,
}

impl std::fmt::Debug for MpiGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiGroup")
            .field("size", &self.size())
            .field("bound", &self.process.is_some())
            .finish()
    }
}

/// Result of `MPI_Group_compare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupCompare {
    /// Same members in the same order (`MPI_IDENT`).
    Ident,
    /// Same members, different order (`MPI_SIMILAR`).
    Similar,
    /// Different membership (`MPI_UNEQUAL`).
    Unequal,
}

impl MpiGroup {
    /// Dense group from explicit members.
    pub fn from_members(members: Vec<ProcRef>) -> Self {
        Self { storage: Storage::Dense(members.into()), process: None, lazy: false }
    }

    /// Bind this group to an MPI process (done by the session layer).
    pub(crate) fn bind(mut self, process: std::sync::Arc<crate::instance::MpiProcess>) -> Self {
        self.process = Some(process);
        self
    }

    /// The bound MPI process, if any.
    pub(crate) fn process_hint(&self) -> Option<std::sync::Arc<crate::instance::MpiProcess>> {
        self.process.clone()
    }

    /// Mark this group as originating from a lazily-initialized session
    /// (done by the session layer alongside `bind`).
    pub(crate) fn mark_lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Whether communicators from this group use lazy peer resolution.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// The empty group (`MPI_GROUP_EMPTY`).
    pub fn empty() -> Self {
        Self::from_members(Vec::new())
    }

    /// Range-compressed group over a shared `base` table
    /// (`MPI_Group_range_incl` over the base's ranks).
    pub fn from_ranges(base: Arc<[ProcRef]>, ranges: Vec<RangeStride>) -> Result<Self> {
        let mut len = 0usize;
        for r in &ranges {
            if r.stride == 0 {
                return Err(MpiError::new(ErrClass::Arg, "zero stride in group range"));
            }
            for i in 0..r.len() {
                let idx = r.nth(i);
                if idx < 0 || idx as usize >= base.len() {
                    return Err(MpiError::new(
                        ErrClass::Rank,
                        format!("range index {idx} outside base of {}", base.len()),
                    ));
                }
            }
            len += r.len();
        }
        Ok(Self {
            storage: Storage::Ranges { base, ranges: ranges.into(), len },
            process: None,
            lazy: false,
        })
    }

    /// Number of members (`MPI_Group_size`).
    pub fn size(&self) -> usize {
        match &self.storage {
            Storage::Dense(m) => m.len(),
            Storage::Ranges { len, .. } => *len,
        }
    }

    /// Member at group rank `i` (`MPI_Group_translate_ranks` toward procs).
    pub fn member(&self, i: usize) -> Option<ProcRef> {
        match &self.storage {
            Storage::Dense(m) => m.get(i).cloned(),
            Storage::Ranges { base, ranges, .. } => {
                let mut remaining = i;
                for r in ranges.iter() {
                    let l = r.len();
                    if remaining < l {
                        return base.get(r.nth(remaining) as usize).cloned();
                    }
                    remaining -= l;
                }
                None
            }
        }
    }

    /// Iterate members in rank order.
    pub fn iter(&self) -> impl Iterator<Item = ProcRef> + '_ {
        (0..self.size()).map(move |i| self.member(i).expect("index in range"))
    }

    /// This process's rank within the group (`MPI_Group_rank`).
    pub fn rank_of(&self, proc: &ProcId) -> Option<usize> {
        self.iter().position(|m| &m.proc == proc)
    }

    /// `MPI_Group_incl`: subset by explicit ranks, order-preserving.
    pub fn incl(&self, ranks: &[usize]) -> Result<MpiGroup> {
        let mut members = Vec::with_capacity(ranks.len());
        for &r in ranks {
            members.push(self.member(r).ok_or_else(|| {
                MpiError::new(ErrClass::Rank, format!("rank {r} outside group of {}", self.size()))
            })?);
        }
        Ok(MpiGroup { storage: Storage::Dense(members.into()), process: self.process.clone(), lazy: self.lazy })
    }

    /// `MPI_Group_excl`: remove the listed ranks.
    pub fn excl(&self, ranks: &[usize]) -> Result<MpiGroup> {
        for &r in ranks {
            if r >= self.size() {
                return Err(MpiError::new(ErrClass::Rank, format!("rank {r} outside group")));
            }
        }
        let members: Vec<ProcRef> = (0..self.size())
            .filter(|i| !ranks.contains(i))
            .map(|i| self.member(i).expect("in range"))
            .collect();
        Ok(MpiGroup { storage: Storage::Dense(members.into()), process: self.process.clone(), lazy: self.lazy })
    }

    /// `MPI_Group_union`: members of `self`, then members of `other` not in
    /// `self` (standard ordering rule).
    pub fn union(&self, other: &MpiGroup) -> MpiGroup {
        let mut members: Vec<ProcRef> = self.iter().collect();
        for m in other.iter() {
            if !members.iter().any(|x| x.proc == m.proc) {
                members.push(m);
            }
        }
        MpiGroup { storage: Storage::Dense(members.into()), process: self.process.clone(), lazy: self.lazy }
    }

    /// `MPI_Group_intersection`: members of `self` also in `other`,
    /// in `self` order.
    pub fn intersection(&self, other: &MpiGroup) -> MpiGroup {
        let members: Vec<ProcRef> = self
            .iter()
            .filter(|m| other.iter().any(|x| x.proc == m.proc))
            .collect();
        MpiGroup { storage: Storage::Dense(members.into()), process: self.process.clone(), lazy: self.lazy }
    }

    /// `MPI_Group_difference`: members of `self` not in `other`.
    pub fn difference(&self, other: &MpiGroup) -> MpiGroup {
        let members: Vec<ProcRef> = self
            .iter()
            .filter(|m| !other.iter().any(|x| x.proc == m.proc))
            .collect();
        MpiGroup { storage: Storage::Dense(members.into()), process: self.process.clone(), lazy: self.lazy }
    }

    /// `MPI_Group_compare`.
    pub fn compare(&self, other: &MpiGroup) -> GroupCompare {
        if self.size() != other.size() {
            return GroupCompare::Unequal;
        }
        let a: Vec<ProcId> = self.iter().map(|m| m.proc).collect();
        let b: Vec<ProcId> = other.iter().map(|m| m.proc).collect();
        if a == b {
            return GroupCompare::Ident;
        }
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort();
        sb.sort();
        if sa == sb {
            GroupCompare::Similar
        } else {
            GroupCompare::Unequal
        }
    }

    /// `MPI_Group_translate_ranks`: map ranks in `self` to ranks in `other`
    /// (`None` = `MPI_UNDEFINED`).
    pub fn translate_ranks(&self, ranks: &[usize], other: &MpiGroup) -> Vec<Option<usize>> {
        ranks
            .iter()
            .map(|&r| self.member(r).and_then(|m| other.rank_of(&m.proc)))
            .collect()
    }

    /// Approximate memory footprint of the membership storage, in entries —
    /// what the sparse representation saves (cited work \[24\]).
    pub fn storage_cost(&self) -> usize {
        match &self.storage {
            Storage::Dense(m) => m.len(),
            // Base is shared; a range costs ~1 entry-equivalent.
            Storage::Ranges { ranges, .. } => ranges.len(),
        }
    }

    /// Materialize as a dense group (used before wire serialization).
    pub fn to_dense(&self) -> MpiGroup {
        match &self.storage {
            Storage::Dense(_) => self.clone(),
            Storage::Ranges { .. } => MpiGroup {
                storage: Storage::Dense(self.iter().collect::<Vec<_>>().into()),
                process: self.process.clone(),
                lazy: self.lazy,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(n: u64) -> Vec<ProcRef> {
        (0..n)
            .map(|i| ProcRef { proc: ProcId::new("j", i as u32), endpoint: EndpointId(i + 100) })
            .collect()
    }

    #[test]
    fn dense_basicops() {
        let g = MpiGroup::from_members(refs(4));
        assert_eq!(g.size(), 4);
        assert_eq!(g.member(2).unwrap().proc.rank(), 2);
        assert!(g.member(4).is_none());
        assert_eq!(g.rank_of(&ProcId::new("j", 3)), Some(3));
        assert_eq!(g.rank_of(&ProcId::new("j", 9)), None);
    }

    #[test]
    fn empty_group() {
        let g = MpiGroup::empty();
        assert_eq!(g.size(), 0);
        assert!(g.member(0).is_none());
    }

    #[test]
    fn range_group_matches_dense_equivalent() {
        let base: Arc<[ProcRef]> = refs(16).into();
        // evens: 0,2,..,14 then descending 15,13,11
        let g = MpiGroup::from_ranges(
            base.clone(),
            vec![
                RangeStride { first: 0, last: 14, stride: 2 },
                RangeStride { first: 15, last: 11, stride: -2 },
            ],
        )
        .unwrap();
        assert_eq!(g.size(), 11);
        let got: Vec<u32> = g.iter().map(|m| m.proc.rank()).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14, 15, 13, 11]);
        assert!(g.storage_cost() < g.size());
    }

    #[test]
    fn range_group_rejects_bad_ranges() {
        let base: Arc<[ProcRef]> = refs(4).into();
        assert!(MpiGroup::from_ranges(
            base.clone(),
            vec![RangeStride { first: 0, last: 3, stride: 0 }]
        )
        .is_err());
        assert!(MpiGroup::from_ranges(
            base,
            vec![RangeStride { first: 0, last: 8, stride: 2 }]
        )
        .is_err());
    }

    #[test]
    fn incl_excl() {
        let g = MpiGroup::from_members(refs(6));
        let sub = g.incl(&[4, 1]).unwrap();
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.member(0).unwrap().proc.rank(), 4);
        assert!(g.incl(&[9]).is_err());
        let ex = g.excl(&[0, 5]).unwrap();
        let got: Vec<u32> = ex.iter().map(|m| m.proc.rank()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert!(g.excl(&[6]).is_err());
    }

    #[test]
    fn set_operations() {
        let g = MpiGroup::from_members(refs(6));
        let a = g.incl(&[0, 1, 2, 3]).unwrap();
        let b = g.incl(&[2, 3, 4]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.size(), 5);
        assert_eq!(u.member(4).unwrap().proc.rank(), 4);
        let i = a.intersection(&b);
        let got: Vec<u32> = i.iter().map(|m| m.proc.rank()).collect();
        assert_eq!(got, vec![2, 3]);
        let d = a.difference(&b);
        let got: Vec<u32> = d.iter().map(|m| m.proc.rank()).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn compare_semantics() {
        let g = MpiGroup::from_members(refs(4));
        let same = MpiGroup::from_members(refs(4));
        assert_eq!(g.compare(&same), GroupCompare::Ident);
        let perm = g.incl(&[3, 2, 1, 0]).unwrap();
        assert_eq!(g.compare(&perm), GroupCompare::Similar);
        let sub = g.incl(&[0, 1]).unwrap();
        assert_eq!(g.compare(&sub), GroupCompare::Unequal);
    }

    #[test]
    fn translate_ranks_across_groups() {
        let g = MpiGroup::from_members(refs(6));
        let a = g.incl(&[1, 3, 5]).unwrap();
        let b = g.incl(&[5, 4, 3]).unwrap();
        assert_eq!(a.translate_ranks(&[0, 1, 2], &b), vec![None, Some(2), Some(0)]);
    }

    #[test]
    fn to_dense_preserves_order() {
        let base: Arc<[ProcRef]> = refs(8).into();
        let g = MpiGroup::from_ranges(base, vec![RangeStride { first: 7, last: 1, stride: -3 }])
            .unwrap();
        let d = g.to_dense();
        assert_eq!(g.compare(&d), GroupCompare::Ident);
    }
}
