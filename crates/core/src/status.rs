//! Receive status (`MPI_Status`).

/// Information about a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender within the communicator (`MPI_SOURCE`).
    pub source: i32,
    /// Message tag (`MPI_TAG`).
    pub tag: i32,
    /// Received payload length in bytes (`MPI_Get_count` with `MPI_BYTE`).
    pub len: usize,
}

impl Status {
    /// Element count for a scalar type (`MPI_Get_count` analog).
    /// `None` when the byte length is not a multiple of the width.
    pub fn count<T: crate::datatype::MpiScalar>(&self) -> Option<usize> {
        self.len.is_multiple_of(T::WIDTH).then_some(self.len / T::WIDTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_divides_by_width() {
        let st = Status { source: 0, tag: 5, len: 12 };
        assert_eq!(st.count::<i32>(), Some(3));
        assert_eq!(st.count::<u8>(), Some(12));
        assert_eq!(st.count::<f64>(), None);
    }
}
