//! The flight-recorder snapshot: one deterministic JSON view of the live
//! state of every layer of the stack.
//!
//! When a chaos invariant fails, or an operator wants to know *why a
//! request is stuck*, the question is always the same: what is in flight,
//! who holds which resource, and what is everything waiting on? This
//! module answers it in one call — [`snapshot`] walks the universe and
//! renders, per layer:
//!
//! * **processes** — every live [`MpiProcess`] of the universe: open
//!   instances, library generation, initialized subsystems, the in-use
//!   local-CID indices, live PGCID families (refcount + whether the parked
//!   PMIx group handle is held), the PML handshake cache (bound,
//!   generation, fabric-relative peer endpoints), and every in-flight
//!   setup request as the progress engine sees it (stage, steps, ticks
//!   without progress, stall flag, what it is parked on);
//! * **registry** — the namespace registry: live psets, pset epoch,
//!   tombstones, GC enablement, and the epoch pins currently blocking GC;
//! * **servers** — per PMIx server: the PGCID block size, pooled ids, and
//!   per-shard occupancy (KVS entries, live collective ops, retained
//!   epochs);
//! * **cvars** — the full control-variable surface with current values.
//!
//! # Determinism
//!
//! The snapshot carries **no wall-clock times and no absolute endpoint
//! ids**: every list is sorted, endpoint ids are normalized to
//! fabric-relative offsets, and maps are `BTreeMap`-backed — two runs of
//! the same seed serialize byte-identically. `ci/introspect_schema.json`
//! pins the shape; `trace_check --introspect` validates it.

use crate::instance::MpiProcess;
use crate::request::ReqSnapshot;
use pmix::PmixUniverse;
use serde_json::{Map, Value};
use std::sync::Arc;

/// Schema tag stamped into every snapshot (checked by `trace_check`).
pub const SCHEMA: &str = "introspect/v1";

/// Take a flight-recorder snapshot of `universe` and every MPI process
/// registered against it. Pure read: takes locks briefly, emits no events,
/// mutates nothing.
pub fn snapshot(universe: &Arc<PmixUniverse>) -> Value {
    let mut root = Map::new();
    root.insert("schema".into(), Value::Str(SCHEMA.into()));
    let procs: Vec<Value> =
        MpiProcess::processes_of(universe).iter().map(process_json).collect();
    root.insert("processes".into(), Value::Array(procs));
    root.insert("registry".into(), registry_json(universe));
    let servers: Vec<Value> = universe.servers().iter().map(server_json).collect();
    root.insert("servers".into(), Value::Array(servers));
    root.insert("cvars".into(), obs::tool::cvars_to_json(&universe.fabric().obs()));
    Value::Object(root)
}

/// Render the snapshot as pretty JSON (the `introspect_dump` bin and the
/// chaos flight-recorder artifact).
pub fn snapshot_string(universe: &Arc<PmixUniverse>) -> String {
    serde_json::to_string_pretty(&snapshot(universe)).expect("snapshot serializes")
}

fn process_json(p: &Arc<MpiProcess>) -> Value {
    let mut m = Map::new();
    m.insert("proc".into(), Value::Str(p.proc().to_string()));
    m.insert("node".into(), Value::U64(u64::from(p.node().0)));
    m.insert("open_instances".into(), Value::U64(u64::from(p.open_instances())));
    m.insert("generation".into(), Value::U64(p.generation()));
    m.insert(
        "subsystems".into(),
        Value::Array(
            p.live_subsystems().iter().map(|s| Value::Str((*s).to_string())).collect(),
        ),
    );
    m.insert(
        "cids_in_use".into(),
        Value::Array(p.cid_indices().iter().map(|i| Value::U64(u64::from(*i))).collect()),
    );
    m.insert(
        "pgcid_families".into(),
        Value::Array(
            p.pgcid_families()
                .iter()
                .map(|(pgcid, refs, holds_group)| {
                    let mut f = Map::new();
                    f.insert("pgcid".into(), Value::U64(*pgcid));
                    f.insert("refs".into(), Value::U64(u64::from(*refs)));
                    f.insert("holds_group".into(), Value::Bool(*holds_group));
                    Value::Object(f)
                })
                .collect(),
        ),
    );
    let cache = p.pml().cache_snapshot();
    let mut c = Map::new();
    c.insert("cap".into(), Value::U64(cache.cap as u64));
    c.insert("gen".into(), Value::U64(cache.gen));
    c.insert(
        "entries".into(),
        Value::Array(cache.entries.iter().map(|e| Value::U64(*e)).collect()),
    );
    m.insert("pml_cache".into(), Value::Object(c));
    m.insert(
        "requests".into(),
        Value::Array(p.progress_engine().describe().iter().map(request_json).collect()),
    );
    Value::Object(m)
}

fn request_json(r: &ReqSnapshot) -> Value {
    let mut m = Map::new();
    m.insert("op".into(), Value::Str(r.op.to_string()));
    m.insert("id".into(), Value::U64(r.id));
    m.insert("stage".into(), Value::Str(r.stage.to_string()));
    m.insert("steps".into(), Value::U64(r.steps));
    m.insert("ticks_without_progress".into(), Value::U64(r.ticks));
    m.insert("stalled".into(), Value::Bool(r.stalled));
    m.insert(
        "waiting_on".into(),
        match &r.waiting_on {
            Some(w) => Value::Str(w.clone()),
            None => Value::Null,
        },
    );
    Value::Object(m)
}

fn registry_json(universe: &Arc<PmixUniverse>) -> Value {
    let reg = universe.registry();
    let mut m = Map::new();
    m.insert("num_psets".into(), Value::U64(reg.num_psets() as u64));
    m.insert("pset_epoch".into(), Value::U64(reg.pset_epoch()));
    m.insert("tombstones".into(), Value::U64(reg.num_tombstones() as u64));
    m.insert("gc_enabled".into(), Value::Bool(reg.gc_enabled()));
    m.insert(
        "epoch_pins".into(),
        Value::Array(
            reg.active_pins()
                .iter()
                .map(|(epoch, holders)| {
                    let mut p = Map::new();
                    p.insert("epoch".into(), Value::U64(*epoch));
                    p.insert("holders".into(), Value::U64(*holders as u64));
                    Value::Object(p)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

fn server_json(server: &Arc<pmix::PmixServer>) -> Value {
    let mut m = Map::new();
    m.insert("node".into(), Value::U64(u64::from(server.node().0)));
    m.insert("pgcid_block".into(), Value::U64(server.pgcid_block()));
    m.insert("pgcid_pool".into(), Value::U64(server.pgcid_pool_len() as u64));
    let occ = server.shard_occupancy();
    let mut s = Map::new();
    s.insert(
        "kvs_entries".into(),
        Value::Array(occ.kvs_entries.iter().map(|n| Value::U64(*n as u64)).collect()),
    );
    s.insert(
        "ops_live".into(),
        Value::Array(occ.ops_live.iter().map(|n| Value::U64(*n as u64)).collect()),
    );
    s.insert(
        "epochs_retained".into(),
        Value::Array(occ.epochs_retained.iter().map(|n| Value::U64(*n as u64)).collect()),
    );
    m.insert("shards".into(), Value::Object(s));
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errhandler::ErrHandler;
    use crate::info::Info;
    use crate::session::{Session, ThreadLevel};
    use crate::{coll, Comm, ReduceOp};
    use prrte::{JobSpec, Launcher};
    use simnet::SimTestbed;

    fn held_cids(v: &Value) -> usize {
        v.as_object().unwrap()["processes"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p.as_object().unwrap()["cids_in_use"].as_array().unwrap().len())
            .sum()
    }

    #[test]
    fn snapshot_sees_held_state_then_drains() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let uni = launcher.universe().clone();
        let procs = launcher
            .spawn(JobSpec::new(4), |ctx| {
                let me = crate::instance::MpiProcess::obtain(&ctx);
                let s =
                    Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                        .unwrap();
                let g = s.group_from_pset("mpi://world").unwrap();
                let c = Comm::create_from_group(&g, "introspect").unwrap();
                coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap();
                // All ranks hold their communicator here: rank 0 snapshots
                // while the others cannot pass the next collective without
                // it. Back-to-back snapshots over the same held state must
                // serialize identically.
                if ctx.proc().rank() == 0 {
                    let uni = ctx.universe();
                    let a = snapshot_string(uni);
                    let b = snapshot_string(uni);
                    assert_eq!(a, b, "snapshot must be deterministic");
                    let v = serde_json::parse_value(&a).unwrap();
                    let obj = v.as_object().unwrap();
                    assert_eq!(obj["schema"].as_str(), Some(SCHEMA));
                    let procs = obj["processes"].as_array().unwrap();
                    assert_eq!(procs.len(), 4, "all four processes appear");
                    for p in procs {
                        let p = p.as_object().unwrap();
                        assert!(
                            !p["cids_in_use"].as_array().unwrap().is_empty(),
                            "a live comm must show as a held CID"
                        );
                        assert!(p["open_instances"].as_u64().unwrap() >= 1);
                    }
                    for s in obj["servers"].as_array().unwrap() {
                        let shards = s.as_object().unwrap()["shards"].as_object().unwrap();
                        assert_eq!(shards["kvs_entries"].as_array().unwrap().len(), pmix::SERVER_SHARDS);
                    }
                    assert!(
                        !obj["cvars"].as_array().unwrap().is_empty(),
                        "cvar surface rides along in the snapshot"
                    );
                }
                coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap();
                c.free().unwrap();
                s.finalize().unwrap();
                me
            })
            .join()
            .unwrap();
        // Every rank returned its MpiProcess, so the process table is still
        // populated; with all comms freed and sessions finalized the
        // snapshot must show a fully drained stack.
        let drained = snapshot(&uni);
        assert_eq!(
            drained.as_object().unwrap()["processes"].as_array().unwrap().len(),
            procs.len()
        );
        assert_eq!(held_cids(&drained), 0, "freed comms leave no held CIDs");
        for p in drained.as_object().unwrap()["processes"].as_array().unwrap() {
            let p = p.as_object().unwrap();
            assert_eq!(p["open_instances"].as_u64(), Some(0));
            assert!(p["pgcid_families"].as_array().unwrap().is_empty());
            assert!(p["requests"].as_array().unwrap().is_empty());
        }
    }
}
