//! MPI file objects created from groups (`MPI_File_open` via
//! `MPI_Comm_create_from_group`, paper §III-B6).
//!
//! The backing store is a process-global in-memory "parallel filesystem"
//! — all simulated MPI processes live in one OS process, so a shared map
//! keyed by path models a cluster-visible filesystem. File handles carry
//! the intermediate communicator the prototype builds from the group.

use crate::coll;
use crate::comm::Comm;
use crate::error::{ErrClass, MpiError, Result};
use crate::group::MpiGroup;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

type FileStore = Mutex<Option<HashMap<String, Arc<Mutex<Vec<u8>>>>>>;
static SHARED_FS: FileStore = Mutex::new(None);

fn fs_lookup(path: &str, create: bool) -> Option<Arc<Mutex<Vec<u8>>>> {
    let mut fs = SHARED_FS.lock();
    let map = fs.get_or_insert_with(HashMap::new);
    if create {
        Some(map.entry(path.to_owned()).or_default().clone())
    } else {
        map.get(path).cloned()
    }
}

/// Delete a file from the shared in-memory filesystem (`MPI_File_delete`).
pub fn delete(path: &str) -> bool {
    let mut fs = SHARED_FS.lock();
    fs.get_or_insert_with(HashMap::new).remove(path).is_some()
}

/// Open mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// Read-only; the file must exist.
    ReadOnly,
    /// Read/write; created if absent.
    ReadWrite,
}

/// A parallel file handle shared by a group of processes.
pub struct MpiFile {
    comm: Comm,
    data: Arc<Mutex<Vec<u8>>>,
    mode: FileMode,
    path: String,
}

impl MpiFile {
    /// Open collectively over a session-derived group
    /// (`MPI_File_open_from_group`).
    pub fn open_from_group(group: &MpiGroup, stringtag: &str, path: &str, mode: FileMode) -> Result<MpiFile> {
        let comm = Comm::create_from_group(group, &format!("file:{stringtag}"))?;
        Self::open_on(comm, path, mode)
    }

    /// Open collectively over an existing communicator (`MPI_File_open`).
    pub fn open(comm: &Comm, path: &str, mode: FileMode) -> Result<MpiFile> {
        Self::open_on(comm.dup()?, path, mode)
    }

    fn open_on(comm: Comm, path: &str, mode: FileMode) -> Result<MpiFile> {
        let data = fs_lookup(path, mode == FileMode::ReadWrite)
            .ok_or_else(|| MpiError::new(ErrClass::Arg, format!("no such file: {path}")))?;
        Ok(MpiFile { comm, data, mode, path: path.to_owned() })
    }

    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The handle's communicator (diagnostics).
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Current file size in bytes (`MPI_File_get_size`).
    pub fn size(&self) -> usize {
        self.data.lock().len()
    }

    /// Independent read at an explicit offset (`MPI_File_read_at`).
    /// Short reads at EOF return fewer bytes.
    pub fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        let data = self.data.lock();
        if offset >= data.len() {
            return Vec::new();
        }
        let end = (offset + len).min(data.len());
        data[offset..end].to_vec()
    }

    /// Independent write at an explicit offset (`MPI_File_write_at`),
    /// growing the file as needed.
    pub fn write_at(&self, offset: usize, bytes: &[u8]) -> Result<()> {
        if self.mode == FileMode::ReadOnly {
            return Err(MpiError::new(ErrClass::Arg, "write on read-only file"));
        }
        let mut data = self.data.lock();
        if data.len() < offset + bytes.len() {
            data.resize(offset + bytes.len(), 0);
        }
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Collective write (`MPI_File_write_at_all`): every rank writes its
    /// block, then all synchronize.
    pub fn write_at_all(&self, offset: usize, bytes: &[u8]) -> Result<()> {
        self.write_at(offset, bytes)?;
        coll::barrier(&self.comm)
    }

    /// Collective read (`MPI_File_read_at_all`).
    pub fn read_at_all(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        coll::barrier(&self.comm)?;
        Ok(self.read_at(offset, len))
    }

    /// Close collectively (`MPI_File_close`).
    pub fn close(self) -> Result<()> {
        coll::barrier(&self.comm)?;
        self.comm.free()
    }
}

impl std::fmt::Debug for MpiFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiFile")
            .field("path", &self.path)
            .field("mode", &self.mode)
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_fs_create_and_delete() {
        let path = "unit-test-file-xyz";
        assert!(fs_lookup(path, false).is_none());
        let f = fs_lookup(path, true).unwrap();
        f.lock().extend_from_slice(b"hello");
        let again = fs_lookup(path, false).unwrap();
        assert_eq!(&*again.lock(), b"hello");
        assert!(delete(path));
        assert!(!delete(path));
        assert!(fs_lookup(path, false).is_none());
    }
}
