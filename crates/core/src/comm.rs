//! Communicators.
//!
//! Every communicator has a 16-bit **local CID** (index into this process's
//! communicator table — the value carried by the compact match header) and
//! optionally a 128-bit **exCID** (paper §III-B3). Three creation regimes:
//!
//! * **built-in** (WPM `MPI_COMM_WORLD`/`MPI_COMM_SELF`): reserved slots
//!   0/1, identical everywhere, `pgcid = 0` exCIDs;
//! * **consensus** (the legacy algorithm, §III-B2): multi-round
//!   max/agree reductions over the parent communicator until every
//!   participant proposes the same free table index — the baseline path,
//!   which degrades when the CID space fragments;
//! * **exCID** (the sessions path): a PGCID from PMIx group construction
//!   (or derivation from a parent's subfields) names the communicator
//!   globally, while each process picks its *own* table index locally —
//!   no agreement traffic at all, at the price of the first-message
//!   handshake in the PML.

use crate::cid::{derive_excid, try_derive_excid, DeriveState, ExCid};
use crate::coll;
use crate::datatype::{self, MpiScalar};
use crate::errhandler::ErrHandler;
use crate::error::{ErrClass, MpiError, Result};
use crate::group::MpiGroup;
use crate::instance::MpiProcess;
use crate::pml::PeerAddr;
use crate::request::{stage, Request, SetupRequest, SetupStage, SetupStep};
use crate::status::Status;
use bytes::Bytes;
use parking_lot::Mutex;
use pmix::GroupDirectives;
use simnet::EndpointId;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// First local CID available to non-built-in communicators (0 = world,
/// 1 = self).
pub const FIRST_DYNAMIC_CID: u16 = 2;

/// How a communicator's identifier was produced (shapes `dup` behavior and
/// benchmark bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CidOrigin {
    /// Reserved built-in slot (WPM world/self).
    Builtin,
    /// Legacy consensus agreement.
    Consensus,
    /// Fresh PGCID from PMIx group construction.
    Pgcid,
    /// Local subfield derivation from a parent exCID.
    Derived,
    /// Rank-symmetric hashed PGCID (lazy sessions, DESIGN.md §14): no PMIx
    /// group construction at all — every member computes the same exCID
    /// locally from the stringtag and membership, and peer endpoints are
    /// left unresolved in the PML until first use.
    Lazy,
}

/// A block of derivable exCIDs: a base exCID (PGCID-fresh or itself
/// derived) plus the derivation cursor walking its subfield space.
///
/// Stored behind an `Arc` so a parent whose block is exhausted and the
/// refill child it mints (see [`Comm::dup`]) *share* one pool: further
/// dups of either consume the same 255-slot budget, which keeps the
/// derivation tree collision-free without re-acquiring a PGCID per dup.
pub(crate) struct DerivePool {
    pub base: ExCid,
    pub state: DeriveState,
    /// Subfield slots returned by collectively-freed derived children:
    /// the child's exCID together with the child's *own* pool, captured at
    /// free time. A recycled child resumes that pool rather than starting a
    /// fresh one, so it can never re-derive a grandchild exCID that might
    /// still be live. LIFO and fed only by the collective [`Comm::free`],
    /// which keeps the list identical on every rank (derivation must stay
    /// rank-symmetric).
    pub freed: Vec<(ExCid, Arc<Mutex<DerivePool>>)>,
}

pub(crate) struct CommInner {
    pub local_cid: u16,
    pub excid: Option<ExCid>,
    pub derive: Mutex<Option<Arc<Mutex<DerivePool>>>>,
    /// Serializes exhaustion-triggered refills: the first dup through the
    /// exhausted pool pays the PMIx group-construct trip, concurrent dups
    /// block here and then derive from the refilled pool (coalescing).
    pub refill_lock: Mutex<()>,
    pub group: MpiGroup,
    pub my_rank: u32,
    pub coll_seq: AtomicU32,
    pub dup_seq: AtomicU64,
    pub origin: CidOrigin,
    pub freed: AtomicBool,
    /// The pool this communicator was derived *from* (`None` unless origin
    /// is `Derived`): freeing the communicator returns its exCID subfield
    /// there for recycling.
    pub parent_pool: Mutex<Option<Arc<Mutex<DerivePool>>>>,
}

/// An MPI communicator bound to its process.
#[derive(Clone)]
pub struct Comm {
    pub(crate) inner: Arc<CommInner>,
    pub(crate) process: Arc<MpiProcess>,
    pub(crate) errh: ErrHandler,
}

impl Comm {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    pub(crate) fn build(
        process: Arc<MpiProcess>,
        group: MpiGroup,
        local_cid: u16,
        excid: Option<ExCid>,
        origin: CidOrigin,
        fixed_cid: Option<u16>,
        pmix_group: Option<pmix::PmixGroup>,
    ) -> Result<Comm> {
        let my_rank = group
            .rank_of(process.proc())
            .ok_or_else(|| MpiError::new(ErrClass::Group, "calling process not in group"))?
            as u32;
        if origin == CidOrigin::Lazy {
            // Lazy route table: our own slot is known (it is this process),
            // every other member starts Unresolved and is resolved on first
            // send (active KVS fetch) or first receive (passive, from the
            // ext header handshake).
            let me = process.proc().clone();
            let own = process.pml().endpoint_id();
            let addrs: Vec<PeerAddr> = group
                .iter()
                .map(|m| {
                    if m.proc == me {
                        PeerAddr::Known(own)
                    } else {
                        PeerAddr::Unresolved(m.proc)
                    }
                })
                .collect();
            let excid = excid.expect("lazy communicators always carry an exCID");
            process
                .pml()
                .register_comm_lazy(local_cid, my_rank, addrs, excid);
        } else {
            let endpoints: Vec<EndpointId> = group.iter().map(|m| m.endpoint).collect();
            process
                .pml()
                .register_comm(local_cid, my_rank, endpoints, excid, fixed_cid);
        }
        // A PGCID-fresh communicator roots a new derivation block: itself
        // plus up to 255 locally-derived children. Acquiring such a block
        // is what the `cid.refills` counter tallies — one per trip through
        // PMIx group construction, never per dup. Hashed lazy exCIDs root a
        // block too (derivation is purely local arithmetic, so it composes
        // with lazy routes), but they are not a refill: no PMIx trip.
        let derive = match origin {
            CidOrigin::Pgcid | CidOrigin::Lazy => excid.map(|e| {
                Arc::new(Mutex::new(DerivePool {
                    base: e,
                    state: DeriveState::fresh(),
                    freed: Vec::new(),
                }))
            }),
            _ => None,
        };
        if origin == CidOrigin::Pgcid {
            process
                .obs()
                .counter(&process.proc().to_string(), "cid", "refills")
                .inc();
        }
        // Every exCID communicator holds a reference on its PGCID family;
        // the PMIx group handle (if we own one) parks there so the *last*
        // free of the family — base or derived — runs the collective
        // destruct, after which the server can recycle the PGCID.
        if let Some(e) = excid {
            if e.pgcid != 0 {
                process.pgcid_retain(e.pgcid, pmix_group);
            }
        }
        Ok(Comm {
            inner: Arc::new(CommInner {
                local_cid,
                excid,
                derive: Mutex::new(derive),
                refill_lock: Mutex::new(()),
                group,
                my_rank,
                coll_seq: AtomicU32::new(0),
                dup_seq: AtomicU64::new(0),
                origin,
                freed: AtomicBool::new(false),
                parent_pool: Mutex::new(None),
            }),
            process,
            errh: ErrHandler::Return,
        })
    }

    /// The sessions constructor (`MPI_Comm_create_from_group`): collective
    /// over the group's members. Performs a PMIx group construct to obtain
    /// a PGCID; each process picks its local CID independently.
    /// Implemented as [`Comm::icomm_create_from_group`] + `wait` (quiet).
    pub fn create_from_group(group: &MpiGroup, stringtag: &str) -> Result<Comm> {
        Self::icomm_inner(group, stringtag, true)?.wait()
    }

    /// Nonblocking `MPI_Comm_create_from_group`: issues the PMIx group
    /// fan-in immediately and returns a [`SetupRequest`] whose stages
    /// (`begin` → `group` → `commit`) complete under `test`/`wait`/the
    /// process [`crate::instance::MpiProcess::progress_engine`]. N
    /// concurrent requests pipeline: all fan-ins (and their PGCID demand)
    /// are on the wire before the first wait, so the per-server coalescer
    /// batches their `pgcid.request` round trips. Dropping the request
    /// cancels collectively (the construction completes, then the
    /// communicator is freed — every rank must drop symmetrically).
    pub fn icomm_create_from_group(
        group: &MpiGroup,
        stringtag: &str,
    ) -> Result<SetupRequest<Comm>> {
        Self::icomm_inner(group, stringtag, false)
    }

    fn icomm_inner(group: &MpiGroup, stringtag: &str, quiet: bool) -> Result<SetupRequest<Comm>> {
        let process = group_process(group)?;
        process.require_active()?;
        // Outer span, entered for every step: the PMIx construct issued in
        // `begin` becomes its child, exactly as in the blocking call.
        let span = process
            .obs()
            .span(&process.proc().to_string(), "comm.create_from_group", stringtag);
        let members: Vec<pmix::ProcId> = group.iter().map(|m| m.proc).collect();
        let name = format!("mpi-comm:{stringtag}");
        let dense = group.to_dense();
        if group.is_lazy() {
            // Lazy sessions path (DESIGN.md §14): no PMIx group construct,
            // no fan-in, no PGCID round trip. Every member hashes the same
            // exCID from (stringtag, membership) — rank-symmetric by
            // construction — and registers unresolved routes. The whole
            // creation is one local stage.
            let pgcid = lazy_pgcid(stringtag, &members);
            let first = stage("lazy_cid", {
                let mut armed = Some((process.clone(), dense));
                move || {
                    let (process, dense) = armed.take().expect("lazy_cid runs once");
                    let local_cid = process.claim_lowest_cid(FIRST_DYNAMIC_CID)?;
                    let comm = Comm::build(
                        process.clone(),
                        dense,
                        local_cid,
                        Some(ExCid::from_pgcid(pgcid)),
                        CidOrigin::Lazy,
                        None,
                        None,
                    )?;
                    process
                        .obs()
                        .counter(&process.proc().to_string(), "cid", "lazy_hashed")
                        .inc();
                    Ok(SetupStep::Done(comm))
                }
            });
            return Ok(SetupRequest::issue(
                process,
                "comm_create_from_group",
                Some(span),
                quiet,
                first,
                Some(Box::new(|c: Comm| {
                    let _ = c.free();
                })),
            ));
        }
        let first = stage("begin", {
            let mut armed = Some((process.clone(), name, members, dense));
            move || {
                let (process, name, members, dense) = armed.take().expect("begin runs once");
                let pending = process.pmix().group_construct_nb(
                    &name,
                    &members,
                    &mpi_directives(&process),
                )?;
                let commit = commit_stage(process, dense, None);
                Ok(SetupStep::Next(Box::new(GroupStage {
                    pending: Some(pending),
                    next: Some(commit),
                })))
            }
        });
        Ok(SetupRequest::issue(
            process,
            "comm_create_from_group",
            Some(span),
            quiet,
            first,
            Some(Box::new(|c: Comm| {
                let _ = c.free();
            })),
        ))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of processes (`MPI_Comm_size`).
    pub fn size(&self) -> u32 {
        self.inner.group.size() as u32
    }

    /// This process's rank (`MPI_Comm_rank`).
    pub fn rank(&self) -> u32 {
        self.inner.my_rank
    }

    /// The communicator's group (`MPI_Comm_group`).
    pub fn group(&self) -> MpiGroup {
        self.inner.group.clone()
    }

    /// The local (table-index) CID. May differ between processes for
    /// sessions communicators — that is the design.
    pub fn local_cid(&self) -> u16 {
        self.inner.local_cid
    }

    /// The exCID, if this communicator has one.
    pub fn excid(&self) -> Option<ExCid> {
        self.inner.excid
    }

    /// How the identifier was produced.
    pub fn cid_origin(&self) -> CidOrigin {
        self.inner.origin
    }

    /// The owning process (internal plumbing).
    pub(crate) fn process(&self) -> &Arc<MpiProcess> {
        &self.process
    }

    /// Replace the error handler (`MPI_Comm_set_errhandler`).
    pub fn set_errhandler(&mut self, errh: ErrHandler) {
        self.errh = errh;
    }

    fn check_live(&self) -> Result<()> {
        if self.inner.freed.load(Ordering::Acquire) {
            return Err(MpiError::new(ErrClass::Comm, "communicator has been freed"));
        }
        Ok(())
    }

    fn check_rank(&self, rank: u32) -> Result<()> {
        if rank >= self.size() {
            return Err(MpiError::new(
                ErrClass::Rank,
                format!("rank {rank} outside communicator of size {}", self.size()),
            ));
        }
        Ok(())
    }

    fn check_tag(tag: i32) -> Result<()> {
        if tag < 0 {
            return Err(MpiError::new(ErrClass::Tag, format!("negative user tag {tag}")));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Non-blocking byte send (`MPI_Isend` with `MPI_BYTE`).
    pub fn isend(&self, dst: u32, tag: i32, data: &[u8]) -> Result<Request> {
        self.check_live()?;
        self.check_rank(dst)?;
        Self::check_tag(tag)?;
        self.isend_internal(dst, tag, Bytes::copy_from_slice(data))
    }

    pub(crate) fn isend_internal(&self, dst: u32, tag: i32, data: Bytes) -> Result<Request> {
        let inner = self.process.pml().isend(self.inner.local_cid, dst, tag, data)?;
        // A send to an unresolved lazy peer parks behind a KVS fetch; hand
        // the fetch to the watchdog engine so stalls get diagnosed like any
        // other setup operation. No-op unless a resolution just began.
        self.process.watch_lazy_resolves();
        Ok(Request::new(inner, self.process.pml().clone()))
    }

    /// Blocking byte send (`MPI_Send`).
    pub fn send(&self, dst: u32, tag: i32, data: &[u8]) -> Result<()> {
        let req = self.errh.check(self.isend(dst, tag, data))?;
        self.errh.check(req.wait().map(|_| ()))
    }

    /// Non-blocking receive. `src`/`tag` accept [`crate::ANY_SOURCE`] /
    /// [`crate::ANY_TAG`].
    pub fn irecv(&self, src: i32, tag: i32) -> Result<Request> {
        self.check_live()?;
        if src >= 0 {
            self.check_rank(src as u32)?;
        } else if src != crate::ANY_SOURCE {
            return Err(MpiError::new(ErrClass::Rank, format!("invalid source {src}")));
        }
        if tag < 0 && tag != crate::ANY_TAG {
            return Err(MpiError::new(ErrClass::Tag, format!("invalid tag {tag}")));
        }
        self.irecv_internal(
            (src != crate::ANY_SOURCE).then_some(src as u32),
            (tag != crate::ANY_TAG).then_some(tag),
        )
    }

    pub(crate) fn irecv_internal(&self, src: Option<u32>, tag: Option<i32>) -> Result<Request> {
        let inner = self.process.pml().irecv(self.inner.local_cid, src, tag)?;
        // A named-source receive can only ever be completed by that one
        // peer: record its endpoint so a fault-aware wait can fail fast
        // (typed) when the peer is already dead, instead of burning its
        // whole timeout budget on a message that can never arrive.
        if let Some(s) = src {
            if let Some(m) = self.inner.group.member(s as usize) {
                inner.set_waiting_on(m.endpoint);
            }
        }
        Ok(Request::new(inner, self.process.pml().clone()))
    }

    /// Blocking receive returning the payload (`MPI_Recv` with `MPI_BYTE`).
    pub fn recv(&self, src: i32, tag: i32) -> Result<(Vec<u8>, Status)> {
        let req = self.errh.check(self.irecv(src, tag))?;
        let (data, status) = self.errh.check(req.wait_data())?;
        Ok((data.to_vec(), status))
    }

    /// Typed send.
    pub fn send_t<T: MpiScalar>(&self, dst: u32, tag: i32, data: &[T]) -> Result<()> {
        self.send(dst, tag, &datatype::to_bytes(data))
    }

    /// Typed receive.
    pub fn recv_t<T: MpiScalar>(&self, src: i32, tag: i32) -> Result<(Vec<T>, Status)> {
        let (bytes, status) = self.recv(src, tag)?;
        Ok((datatype::from_bytes(&bytes)?, status))
    }

    /// Combined send+receive (`MPI_Sendrecv`): both transfers in flight
    /// concurrently, then both awaited.
    pub fn sendrecv(
        &self,
        dst: u32,
        send_tag: i32,
        data: &[u8],
        src: i32,
        recv_tag: i32,
    ) -> Result<(Vec<u8>, Status)> {
        let rreq = self.irecv(src, recv_tag)?;
        let sreq = self.isend(dst, send_tag, data)?;
        let (rdata, status) = rreq.wait_data()?;
        sreq.wait()?;
        Ok((rdata.to_vec(), status))
    }

    /// `MPI_Probe`-lite: whether an unexpected message is queued (tests).
    pub fn unexpected_queued(&self) -> usize {
        self.process.pml().unexpected_count(self.inner.local_cid)
    }

    // ------------------------------------------------------------------
    // Derivation: dup / split / create_group
    // ------------------------------------------------------------------

    /// `MPI_Comm_dup`.
    ///
    /// * Consensus/built-in parents run the legacy multi-round consensus
    ///   algorithm (the Open MPI baseline of the paper's Fig. 4).
    /// * exCID parents derive a child exCID **locally** from the parent's
    ///   active subfield — zero agreement traffic — falling back to a fresh
    ///   PGCID when the subfield space is exhausted.
    pub fn dup(&self) -> Result<Comm> {
        self.check_live()?;
        match self.inner.excid {
            Some(_) if self.inner.origin != CidOrigin::Builtin => {
                match self.derive_once() {
                    Some(res) => res,
                    None => {
                        // Block exhausted: every participant hits this at
                        // the same dup index (derivation is deterministic),
                        // so the group collectively acquires a fresh PGCID.
                        // The parent's pool is then *refilled in place* with
                        // the child's block — shared, so subsequent dups of
                        // either communicator derive locally from it rather
                        // than paying PMIx again.
                        //
                        // Refills are serialized per communicator: exactly
                        // one concurrent dup pays the PMIx trip, the rest
                        // wait here, observe the refilled pool on their
                        // second-chance derivation, and derive locally.
                        let _refill = self.inner.refill_lock.lock();
                        let pool = self.inner.derive.lock().clone();
                        let second = pool.as_ref().and_then(|p| {
                            let mut pl = p.lock();
                            if let Some((excid, child_pool)) = pl.freed.pop() {
                                return Some((excid, child_pool, true));
                            }
                            let base = pl.base;
                            derive_excid(&base, &mut pl.state).map(|(e, s)| {
                                let child = Arc::new(Mutex::new(DerivePool {
                                    base: e,
                                    state: s,
                                    freed: Vec::new(),
                                }));
                                (e, child, false)
                            })
                        });
                        if let Some((child_excid, child_pool, recycled)) = second {
                            // Someone refilled (or freed a sibling) while we
                            // waited: coalesce.
                            self.process
                                .obs()
                                .counter(
                                    &self.process.proc().to_string(),
                                    "cid",
                                    "refill_coalesced",
                                )
                                .inc();
                            let parent = pool.expect("second chance implies a pool");
                            return self.build_derived(
                                child_excid,
                                child_pool,
                                parent,
                                recycled,
                            );
                        }
                        let child = self.dup_via_group()?;
                        let refilled = child.inner.derive.lock().clone();
                        *self.inner.derive.lock() = refilled;
                        self.count_derivation();
                        let obs = self.process.obs();
                        obs.event(
                            &self.process.proc().to_string(),
                            "cid",
                            "cid.refill",
                            vec![(
                                "pgcid".into(),
                                child.excid().map(|e| e.pgcid).unwrap_or(0).into(),
                            )],
                        );
                        Ok(child)
                    }
                }
            }
            _ => self.dup_consensus(),
        }
    }

    /// One attempt at the local-derivation fast path: recycled subfields
    /// first (slots returned by freed children), then fresh derivation —
    /// initially rooted at this communicator's own exCID, and after an
    /// exhaustion-triggered refill rooted at the fresh block. `None` when
    /// the subfield space is exhausted (or the comm never seeded a pool),
    /// with the exhaustion mode recorded: silently wrapping here would
    /// alias two children onto one exCID.
    fn derive_once(&self) -> Option<Result<Comm>> {
        let pool = self.inner.derive.lock().clone();
        let derived = pool.as_ref().map(|p| {
            let mut pl = p.lock();
            if let Some((excid, child_pool)) = pl.freed.pop() {
                return Ok((excid, child_pool, true));
            }
            let base = pl.base;
            try_derive_excid(&base, &mut pl.state).map(|(e, s)| {
                let child = Arc::new(Mutex::new(DerivePool {
                    base: e,
                    state: s,
                    freed: Vec::new(),
                }));
                (e, child, false)
            })
        });
        match derived {
            Some(Ok((child_excid, child_pool, recycled))) => {
                let parent = pool.expect("derivation implies a pool");
                Some(self.build_derived(child_excid, child_pool, parent, recycled))
            }
            other => {
                let obs = self.process.obs();
                let p = self.process.proc().to_string();
                obs.counter(&p, "cid", "subfield_exhausted").inc();
                let reason = match other {
                    Some(Err(why)) => why.as_str(),
                    _ => "no-pool",
                };
                obs.event(
                    &p,
                    "cid",
                    "cid.subfield_exhausted",
                    vec![("reason".into(), reason.into())],
                );
                None
            }
        }
    }

    /// Build a locally-derived child communicator (the zero-traffic dup):
    /// emits the `comm.dup_derived` span, claims a local CID, installs the
    /// child's derivation pool (fresh, or resumed when the exCID was
    /// recycled from a freed sibling), and records the parent pool so a
    /// later free can return the subfield.
    fn build_derived(
        &self,
        child_excid: ExCid,
        child_pool: Arc<Mutex<DerivePool>>,
        parent_pool: Arc<Mutex<DerivePool>>,
        recycled: bool,
    ) -> Result<Comm> {
        let mut span = self.process.obs().span(
            &self.process.proc().to_string(),
            "comm.dup_derived",
            &format!("{child_excid}"),
        );
        span.add_work(1);
        let local_cid = self.process.claim_lowest_cid(FIRST_DYNAMIC_CID)?;
        let comm = Comm::build(
            self.process.clone(),
            self.inner.group.clone(),
            local_cid,
            Some(child_excid),
            CidOrigin::Derived,
            None,
            None,
        )?;
        *comm.inner.derive.lock() = Some(child_pool);
        *comm.inner.parent_pool.lock() = Some(parent_pool);
        self.count_derivation();
        if recycled {
            self.process
                .obs()
                .counter(&self.process.proc().to_string(), "cid", "subfields_recycled")
                .inc();
        }
        Ok(comm)
    }

    /// One exCID handed out by dup-derivation (including the dup that
    /// triggered a refill) — the "zero agreement traffic" currency of the
    /// sessions design, tallied per process under `cid.derivations`.
    fn count_derivation(&self) {
        self.process
            .obs()
            .counter(&self.process.proc().to_string(), "cid", "derivations")
            .inc();
    }

    /// `MPI_Comm_dup` acquiring a *fresh PGCID* through PMIx — the behavior
    /// of the paper's prototype as measured in Fig. 4 ("overhead ...
    /// accounted for by the overhead of acquiring a PMIx group context
    /// identifier"). Exposed separately so the benchmarks can reproduce the
    /// figure and the ablation can compare it against local derivation.
    /// Implemented as [`Comm::idup_via_group`] + `wait` (quiet).
    pub fn dup_via_group(&self) -> Result<Comm> {
        self.idup_via_group_inner(true)?.wait()
    }

    /// Nonblocking [`Comm::dup_via_group`]: the fresh-PGCID dup as a
    /// [`SetupRequest`] (`begin` → `group` → `commit`). This is the
    /// overlap workhorse of `fig4_comm_dup --nonblocking`: K requests
    /// issued back-to-back put K fan-ins (and one coalesced PGCID demand)
    /// on the wire before the first wait.
    pub fn idup_via_group(&self) -> Result<SetupRequest<Comm>> {
        self.idup_via_group_inner(false)
    }

    fn idup_via_group_inner(&self, quiet: bool) -> Result<SetupRequest<Comm>> {
        self.check_live()?;
        let n = self.inner.dup_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!(
            "mpi-dup:{}:{}",
            self.inner
                .excid
                .map(|e| format!("{e}"))
                .unwrap_or_else(|| format!("cid{}", self.inner.local_cid)),
            n
        );
        let members: Vec<pmix::ProcId> = self.inner.group.iter().map(|m| m.proc).collect();
        let span = self
            .process
            .obs()
            .span(&self.process.proc().to_string(), "comm.dup_group", &name);
        let first = stage("begin", {
            let mut armed = Some((
                self.process.clone(),
                self.inner.group.clone(),
                name,
                members,
            ));
            move || {
                let (process, group, name, members) = armed.take().expect("begin runs once");
                let pending = process.pmix().group_construct_nb(
                    &name,
                    &members,
                    &mpi_directives(&process),
                )?;
                let commit = commit_stage(process, group, None);
                Ok(SetupStep::Next(Box::new(GroupStage {
                    pending: Some(pending),
                    next: Some(commit),
                })))
            }
        });
        Ok(SetupRequest::issue(
            self.process.clone(),
            "comm_dup_via_group",
            Some(span),
            quiet,
            first,
            Some(Box::new(|c: Comm| {
                let _ = c.free();
            })),
        ))
    }

    /// Nonblocking `MPI_Comm_dup`. Mirrors [`Comm::dup`]'s regimes:
    ///
    /// * exCID parents try the local-derivation fast path at issue time —
    ///   completing in the issuing call when a subfield is free — and fall
    ///   back to a *pipelined* refill (fresh PGCID via the nonblocking
    ///   PMIx construct; the parent pool is refilled at commit). Unlike
    ///   the blocking `dup`, concurrent exhausted `idup`s do not coalesce
    ///   on the refill lock — each pipelines its own construct, which is
    ///   the point of the nonblocking path (the per-server PGCID
    ///   coalescer still batches their id demand).
    /// * Consensus/built-in parents run the legacy consensus agreement as
    ///   one coarse `consensus` stage: nothing runs at issue, and the
    ///   first poll executes the whole (inherently blocking) multi-round
    ///   exchange. Documented in DESIGN.md §12.
    pub fn idup(&self) -> Result<SetupRequest<Comm>> {
        self.check_live()?;
        let excid_path = self.inner.excid.is_some() && self.inner.origin != CidOrigin::Builtin;
        let parent = self.clone();
        let first = if excid_path {
            stage("derive", {
                let mut armed = Some(parent);
                move || {
                    let parent = armed.take().expect("derive runs once");
                    if let Some(res) = parent.derive_once() {
                        return res.map(SetupStep::Done);
                    }
                    parent.begin_refill()
                }
            })
        } else {
            // A cheap first stage so `issue` never blocks: the consensus
            // exchange runs on the first *poll*, not in the issuing call.
            stage("resolve", {
                let mut armed = Some(parent);
                move || {
                    let parent = armed.take().expect("resolve runs once");
                    let mut armed = Some(parent);
                    Ok(SetupStep::Next(stage("consensus", move || {
                        let parent = armed.take().expect("consensus runs once");
                        parent.dup_consensus().map(SetupStep::Done)
                    })))
                }
            })
        };
        Ok(SetupRequest::issue(
            self.process.clone(),
            "comm_idup",
            None,
            false,
            first,
            Some(Box::new(|c: Comm| {
                let _ = c.free();
            })),
        ))
    }

    /// Begin the exhaustion refill for [`Comm::idup`]: a nonblocking PMIx
    /// construct whose commit installs the child's fresh derivation block
    /// as this communicator's pool (same in-place refill as the blocking
    /// `dup`, minus the refill-lock coalescing).
    fn begin_refill(&self) -> Result<SetupStep<Comm>> {
        let n = self.inner.dup_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!(
            "mpi-dup:{}:{}",
            self.inner
                .excid
                .map(|e| format!("{e}"))
                .unwrap_or_else(|| format!("cid{}", self.inner.local_cid)),
            n
        );
        let members: Vec<pmix::ProcId> = self.inner.group.iter().map(|m| m.proc).collect();
        let pending = self.process.pmix().group_construct_nb(
            &name,
            &members,
            &mpi_directives(&self.process),
        )?;
        let parent = self.clone();
        let commit = commit_stage(
            self.process.clone(),
            self.inner.group.clone(),
            Some(Box::new(move |child: &Comm| {
                let refilled = child.inner.derive.lock().clone();
                *parent.inner.derive.lock() = refilled;
                parent.count_derivation();
                parent.process.obs().event(
                    &parent.process.proc().to_string(),
                    "cid",
                    "cid.refill",
                    vec![(
                        "pgcid".into(),
                        child.excid().map(|e| e.pgcid).unwrap_or(0).into(),
                    )],
                );
                Ok(())
            })),
        );
        Ok(SetupStep::Next(Box::new(GroupStage {
            pending: Some(pending),
            next: Some(commit),
        })))
    }

    /// `MPI_Comm_dup` via the legacy consensus algorithm (baseline path).
    pub fn dup_consensus(&self) -> Result<Comm> {
        self.check_live()?;
        let all: Vec<u32> = (0..self.size()).collect();
        let cid = self.consensus_cid(&all)?;
        Comm::build(
            self.process.clone(),
            self.inner.group.clone(),
            cid,
            None,
            CidOrigin::Consensus,
            Some(cid),
            None,
        )
    }

    /// The legacy consensus algorithm (paper §III-B2): propose the lowest
    /// free table index, agree on the max, repeat until unanimous. Runs
    /// over this communicator's point-to-point channels among
    /// `participants` (ranks of this comm). Returns the agreed CID,
    /// claimed locally.
    pub(crate) fn consensus_cid(&self, participants: &[u32]) -> Result<u16> {
        let obs = self.process.obs();
        let p = self.process.proc().to_string();
        let rounds_ctr = obs.counter(&p, "cid", "consensus_rounds");
        // Entered for the whole agreement, so the allreduce traffic below
        // carries this span's context; work = rounds to convergence.
        let mut span = obs.span(
            &p,
            "cid.consensus",
            &format!(
                "cid{}@{}",
                self.inner.local_cid,
                self.inner.coll_seq.load(Ordering::Relaxed)
            ),
        );
        let _entered = span.enter();
        let mut candidate = FIRST_DYNAMIC_CID;
        for round in 1..=4096u64 {
            let proposed = self.process.peek_lowest_cid(candidate)?;
            let max = coll::subgroup_allreduce_u32(
                self,
                participants,
                proposed as u32,
                coll::SubgroupOp::Max,
            )?;
            let agree = u32::from(proposed as u32 == max);
            let unanimous = coll::subgroup_allreduce_u32(
                self,
                participants,
                agree,
                coll::SubgroupOp::Min,
            )?;
            if unanimous == 1 {
                // Claim may race with a local interleaved creation; retry
                // the consensus if the slot vanished.
                if self.process.claim_cid(max as u16).is_ok() {
                    rounds_ctr.add(round);
                    obs.counter(&p, "cid", "consensus_agreements").inc();
                    span.add_work(round);
                    return Ok(max as u16);
                }
            }
            candidate = max as u16;
        }
        Err(MpiError::intern("CID consensus did not converge in 4096 rounds"))
    }

    /// Number of consensus rounds a hypothetical allocation would need
    /// right now (fragmentation diagnostics for the ablation benchmark).
    pub fn probe_consensus_rounds(&self) -> Result<u32> {
        let all: Vec<u32> = (0..self.size()).collect();
        let mut candidate = FIRST_DYNAMIC_CID;
        for round in 1..=4096 {
            let proposed = self.process.peek_lowest_cid(candidate)?;
            let max = coll::subgroup_allreduce_u32(
                self,
                &all,
                proposed as u32,
                coll::SubgroupOp::Max,
            )?;
            let agree = u32::from(proposed as u32 == max);
            let unanimous =
                coll::subgroup_allreduce_u32(self, &all, agree, coll::SubgroupOp::Min)?;
            if unanimous == 1 {
                return Ok(round);
            }
            candidate = max as u16;
        }
        Ok(4096)
    }

    /// `MPI_Comm_split`.
    pub fn split(&self, color: u32, key: u32) -> Result<Comm> {
        self.check_live()?;
        // Exchange (color, key, rank) among all members.
        let mine = [color, key, self.rank()];
        let all = coll::allgather_t(self, &mine)?;
        let mut members: Vec<(u32, u32)> = all
            .chunks_exact(3)
            .filter(|c| c[0] == color)
            .map(|c| (c[1], c[2]))
            .collect();
        members.sort();
        let ranks: Vec<usize> = members.iter().map(|(_, r)| *r as usize).collect();
        let subgroup = self.inner.group.incl(&ranks)?;
        self.make_subgroup_comm(subgroup, &format!("split:c{color}"))
    }

    /// `MPI_Comm_create_group`: collective only over `group`'s members
    /// (partial participation ⇒ always a fresh identifier; paper §III-B3).
    pub fn create_group(&self, group: &MpiGroup, tag: i32) -> Result<Comm> {
        self.check_live()?;
        if group.rank_of(self.process.proc()).is_none() {
            return Err(MpiError::new(ErrClass::Group, "caller not in group"));
        }
        self.make_subgroup_comm(group.clone(), &format!("cgrp:t{tag}"))
    }

    fn make_subgroup_comm(&self, subgroup: MpiGroup, label: &str) -> Result<Comm> {
        if self.inner.excid.is_some() {
            // Sessions path: fresh PGCID over the subgroup.
            let members: Vec<pmix::ProcId> = subgroup.iter().map(|m| m.proc).collect();
            let name = format!(
                "mpi-sub:{}:{}:{}",
                self.inner.excid.map(|e| e.pgcid).unwrap_or(0),
                label,
                self.inner.dup_seq.fetch_add(1, Ordering::Relaxed)
            );
            let pgroup = self
                .process
                .pmix()
                .group_construct(&name, &members, &mpi_directives(&self.process))?;
            let pgcid = pgroup.pgcid().ok_or_else(|| MpiError::intern("no PGCID"))?;
            let local_cid = self.process.claim_lowest_cid(FIRST_DYNAMIC_CID)?;
            Comm::build(
                self.process.clone(),
                subgroup,
                local_cid,
                Some(ExCid::from_pgcid(pgcid)),
                CidOrigin::Pgcid,
                None,
                Some(pgroup),
            )
        } else {
            // Baseline: consensus among the subgroup over parent channels.
            let my_parent_rank = self.rank();
            let participants: Vec<u32> = subgroup
                .iter()
                .map(|m| {
                    self.inner
                        .group
                        .rank_of(&m.proc)
                        .map(|r| r as u32)
                        .ok_or_else(|| {
                            MpiError::new(ErrClass::Group, "subgroup member not in parent")
                        })
                })
                .collect::<Result<_>>()?;
            debug_assert!(participants.contains(&my_parent_rank));
            let cid = self.consensus_cid(&participants)?;
            Comm::build(
                self.process.clone(),
                subgroup,
                cid,
                None,
                CidOrigin::Consensus,
                Some(cid),
                None,
            )
        }
    }

    // ------------------------------------------------------------------
    // Fault-aware repair
    // ------------------------------------------------------------------

    /// Fault-shrink (`MPIX_Comm_shrink` analog): build a replacement
    /// communicator over this communicator's still-live members, via a
    /// fresh `MPI_Comm_create_from_group` tagged `shrink:{tag}` — a
    /// collective over exactly the survivors, which every survivor must
    /// call with the same `tag`. Dead peers are evicted from the PML
    /// handshake cache on the way out, so a later incarnation on the same
    /// endpoint is never trusted with a stale `CidAdvert`.
    ///
    /// Fails typed [`ErrClass::ProcTerminated`] when the *caller* is
    /// itself marked dead (it cannot be part of any survivor collective).
    pub fn shrink(&self, tag: &str) -> Result<Comm> {
        self.check_live()?;
        let fabric = self.process.universe().fabric().clone();
        let mut survivors = Vec::new();
        for m in self.inner.group.iter() {
            if fabric.is_alive(m.endpoint) {
                survivors.push(m);
            } else {
                self.process.pml().invalidate_peer(m.endpoint);
            }
        }
        if !survivors.iter().any(|m| &m.proc == self.process.proc()) {
            return Err(MpiError::new(
                ErrClass::ProcTerminated,
                "calling process is marked dead; it cannot join the shrunk communicator",
            ));
        }
        let group = MpiGroup::from_members(survivors)
            .bind(self.process.clone())
            .mark_lazy(self.inner.group.is_lazy());
        Comm::create_from_group(&group, &format!("shrink:{tag}"))
    }

    /// Repair by re-deriving from a pset at a pinned epoch (the recovery
    /// loop's step once a fault has settled into the registry): resolves
    /// `pset` only if the registry is still exactly at `epoch`, sanity
    /// checks the snapshot, and rebuilds via `MPI_Comm_create_from_group`
    /// tagged `repair:{pset}@{epoch}` — collective over the members of
    /// that epoch.
    ///
    /// Errors are typed so a recovery loop can branch without string
    /// matching:
    /// * [`ErrClass::Stale`] — the registry moved past `epoch` (another
    ///   fault or churn landed): observe the newer epoch and retry;
    /// * [`ErrClass::ProcTerminated`] — the pinned membership already
    ///   contains a member the fabric marked dead (a fault raced the pset
    ///   shrink): wait for the shrink event and retry;
    /// * [`ErrClass::Group`] — the caller is not in the membership (it
    ///   was itself removed): stop repairing;
    /// * [`ErrClass::Timeout`] — the rebuild collective itself timed out
    ///   (e.g. a partition): retry within the caller's budget.
    pub fn repair_via_pset(
        &self,
        session: &crate::session::Session,
        pset: &str,
        epoch: u64,
    ) -> Result<Comm> {
        self.check_live()?;
        let group = session.group_from_pset_at(pset, epoch)?;
        if group.rank_of(self.process.proc()).is_none() {
            return Err(MpiError::new(
                ErrClass::Group,
                format!("caller is not a member of pset '{pset}' at epoch {epoch}"),
            ));
        }
        let fabric = self.process.universe().fabric();
        for m in group.iter() {
            if !fabric.is_alive(m.endpoint) {
                return Err(MpiError::new(
                    ErrClass::ProcTerminated,
                    format!(
                        "repair pset '{pset}'@{epoch} still includes dead member {}",
                        m.proc
                    ),
                ));
            }
        }
        let group = group.mark_lazy(session.is_lazy());
        Comm::create_from_group(&group, &format!("repair:{pset}@{epoch}"))
    }

    /// Locally retire a communicator whose membership has diverged — a
    /// member died, so the collective [`Comm::free`] could never complete.
    /// Reclaims the local CID and PML route and leaves the PMIx group
    /// behind for the server's GC. Recovery loops call this on the broken
    /// communicator once [`Comm::shrink`] / [`Comm::repair_via_pset`] has
    /// handed them a replacement; it is also the right teardown when
    /// different ranks may have observed faults asymmetrically (one rank
    /// freeing while another abandons would strand the collective).
    pub fn abandon(self) {
        self.abandon_local();
    }

    /// Locally retire this communicator without the collective free: the
    /// elastic rebuild path replaces a communicator whose membership has
    /// already diverged, so a collective `group_destruct` could never
    /// complete. The PMIx group is deliberately left behind; only the
    /// local CID and PML route are reclaimed.
    pub(crate) fn abandon_local(&self) {
        if self.inner.freed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.process.pml().unregister_comm(self.inner.local_cid);
        self.process.release_cid(self.inner.local_cid);
        self.process
            .obs()
            .counter(&self.process.proc().to_string(), "cid", "released")
            .inc();
        // Drop the PGCID-family reference WITHOUT destructing (membership
        // diverged, the collective could never complete) and without
        // recycling the subfield (abandonment is rank-asymmetric; the
        // freed-list must stay identical on every rank).
        if let Some(e) = self.inner.excid {
            if e.pgcid != 0 {
                drop(self.process.pgcid_release(e.pgcid));
            }
        }
    }

    /// `MPI_Comm_free`: collective. Releases the local CID and route,
    /// returns a derived exCID subfield to its parent pool for recycling,
    /// and — when this was the last live communicator of its PGCID family —
    /// collectively destructs the backing PMIx group, letting the server
    /// recycle the PGCID.
    pub fn free(self) -> Result<()> {
        self.check_live()?;
        self.inner.freed.store(true, Ordering::Release);
        self.process.pml().unregister_comm(self.inner.local_cid);
        self.process.release_cid(self.inner.local_cid);
        let obs = self.process.obs();
        let p = self.process.proc().to_string();
        obs.counter(&p, "cid", "released").inc();
        if self.inner.origin == CidOrigin::Derived {
            if let (Some(excid), Some(parent)) =
                (self.inner.excid, self.inner.parent_pool.lock().clone())
            {
                if let Some(own) = self.inner.derive.lock().clone() {
                    if !Arc::ptr_eq(&own, &parent) {
                        parent.lock().freed.push((excid, own));
                        obs.counter(&p, "cid", "subfields_returned").inc();
                    }
                }
            }
        }
        if let Some(e) = self.inner.excid {
            if e.pgcid != 0 {
                if let Some(g) = self.process.pgcid_release(e.pgcid) {
                    self.process.pmix().group_destruct(&g, None)?;
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.inner.my_rank)
            .field("size", &self.inner.group.size())
            .field("local_cid", &self.inner.local_cid)
            .field("excid", &self.inner.excid)
            .field("origin", &self.inner.origin)
            .finish()
    }
}

/// Rank-symmetric hashed PGCID for lazy communicators: FNV-1a over the
/// stringtag and the (rank-ordered) membership, with bit 63 forced on so
/// the value can never collide with a server-issued PGCID (those grow
/// upward from one) and can never be 0 (the built-in sentinel). Every
/// member computes the identical value with zero traffic; MPI requires the
/// stringtag to be unique among concurrent creations over the same group,
/// which is exactly the disambiguation the hash relies on.
pub(crate) fn lazy_pgcid(stringtag: &str, members: &[pmix::ProcId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = eat(OFFSET, stringtag.as_bytes());
    for m in members {
        h = eat(h, &[0xff]); // field separator: "ab"+"c" != "a"+"bc"
        h = eat(h, m.to_string().as_bytes());
    }
    h | (1 << 63)
}

/// The MPI-profile group directives, with the construct deadline read from
/// the universe's `pmix.group_timeout_ms` cvar instead of the compile-time
/// default — fault drills lower it to get fast typed `Timeout` verdicts.
fn mpi_directives(process: &MpiProcess) -> GroupDirectives {
    GroupDirectives::for_mpi().with_timeout(Some(process.universe().group_timeout()))
}

fn group_process(group: &MpiGroup) -> Result<Arc<MpiProcess>> {
    // Groups created through sessions carry their process; reconstruct it
    // from the session-bound group type.
    group
        .process_hint()
        .ok_or_else(|| MpiError::new(ErrClass::Group, "group is not bound to an MPI process"))
}

/// Continuation a [`GroupStage`] hands the delivered PMIx group to.
type GroupCont = Box<dyn FnOnce(pmix::PmixGroup) -> Result<SetupStep<Comm>> + Send>;
/// Post-build hook run by the `commit` stage on the constructed comm.
type CommitHook = Box<dyn FnOnce(&Comm) -> Result<()> + Send>;

/// The `group` stage of a communicator [`SetupRequest`]: an in-flight
/// nonblocking PMIx group construct. Parks on the server condvar (not a
/// sleep), so a blocking wrapper of an `i`-variant keeps condvar-grade
/// wakeup latency.
struct GroupStage {
    pending: Option<pmix::PendingGroup>,
    next: Option<GroupCont>,
}

impl SetupStage<Comm> for GroupStage {
    fn name(&self) -> &'static str {
        "group"
    }
    fn poll(&mut self) -> Result<SetupStep<Comm>> {
        let pending = self
            .pending
            .as_mut()
            .ok_or_else(|| MpiError::intern("group stage polled after completion"))?;
        match pending.try_group() {
            None => Ok(SetupStep::Pending),
            Some(res) => {
                self.pending = None;
                let pgroup = res?;
                (self.next.take().expect("group continuation runs once"))(pgroup)
            }
        }
    }
    fn park(&mut self, limit: std::time::Duration) {
        if let Some(p) = self.pending.as_mut() {
            p.park(limit);
        }
    }
    fn waiting_on(&self) -> Option<String> {
        self.pending
            .as_ref()
            .map(|p| format!("pmix group construct '{}'", p.name()))
    }
}

/// Continuation for [`GroupStage`]: once the construct delivers, hand over
/// to a `commit` stage that extracts the PGCID, claims a local CID and
/// builds the communicator. `after` runs on the built comm before the
/// request completes (the idup refill installs the child's derivation
/// block there).
fn commit_stage(process: Arc<MpiProcess>, group: MpiGroup, after: Option<CommitHook>) -> GroupCont {
    Box::new(move |pgroup| {
        let mut armed = Some((process, group, pgroup, after));
        Ok(SetupStep::Next(stage("commit", move || {
            let (process, group, pgroup, after) = armed.take().expect("commit runs once");
            let pgcid = pgroup
                .pgcid()
                .ok_or_else(|| MpiError::intern("PMIx group construct returned no PGCID"))?;
            let local_cid = process.claim_lowest_cid(FIRST_DYNAMIC_CID)?;
            let comm = Comm::build(
                process,
                group,
                local_cid,
                Some(ExCid::from_pgcid(pgcid)),
                CidOrigin::Pgcid,
                None,
                Some(pgroup),
            )?;
            if let Some(f) = after {
                f(&comm)?;
            }
            Ok(SetupStep::Done(comm))
        })))
    })
}
