//! Elastic sessions: pset churn, versioned groups, and fault-aware
//! communicator rebuild.
//!
//! The runtime's pset registry is **versioned**: every definition,
//! membership change, and deletion bumps a global epoch and is broadcast
//! through the PMIx event subsystem (with replay to late subscribers).
//! This module is the application-facing rim of that machinery:
//!
//! * [`Session::watch_psets`] — subscribe to pset changes as decoded
//!   [`PsetUpdate`]s;
//! * [`Session::group_from_pset_at`] — resolve a pset *at a pinned epoch*,
//!   failing with a typed [`ErrClass::Stale`] error when the registry has
//!   moved on (torn-read detection);
//! * [`ElasticComm`] — the rebuild loop: on every membership change (a
//!   grow, a graceful retirement, or a failure-driven shrink) derive a
//!   fresh group from the surviving membership, build a replacement
//!   communicator with `MPI_Comm_create_from_group`, and explicitly
//!   invalidate the PML handshake cache for departed peers so a later
//!   incarnation on the same endpoint is never trusted with a stale
//!   `CidAdvert`.
//!
//! The protocol assumption is the one the driver examples/benches uphold:
//! churn is sequenced, i.e. the controller waits until every member of
//! epoch `E` has rebuilt before initiating epoch `E+1`. Within that
//! regime every member observes the same ordered stream of epochs, so the
//! `rebuild:{pset}@{epoch}` string tags line up and each
//! `create_from_group` is a well-formed collective over exactly the
//! members of that epoch.

use crate::comm::Comm;
use crate::error::{ErrClass, MpiError, Result};
use crate::group::{MpiGroup, ProcRef};
use crate::session::Session;
use pmix::value::keys;
use pmix::{Event, EventCode, ProcId};
use std::time::Duration;

/// One decoded pset change, as observed through a [`PsetWatcher`].
#[derive(Debug, Clone)]
pub struct PsetUpdate {
    /// Name of the pset that changed.
    pub pset: String,
    /// Global registry epoch at which the change took effect.
    pub epoch: u64,
    /// What happened.
    pub kind: PsetUpdateKind,
    /// Membership after the change (empty for deletions).
    pub members: Vec<ProcId>,
    /// Causal context of the runtime-side `pset.update` span, so rebuild
    /// spans can link back across the event hop.
    pub ctx: Option<obs::TraceContext>,
}

/// The kind of a [`PsetUpdate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsetUpdateKind {
    /// The pset was defined (also synthesized on replay for subscribers
    /// that arrive after the definition).
    Defined,
    /// The membership changed (grow, retire, or failure-driven shrink).
    Membership,
    /// The pset was deleted.
    Deleted,
}

/// A subscription to pset-change events, scoped to a session.
pub struct PsetWatcher {
    stream: pmix::event::EventStream,
}

fn decode(ev: Event) -> Option<PsetUpdate> {
    let kind = match ev.code {
        EventCode::PsetDefined => PsetUpdateKind::Defined,
        EventCode::PsetMembership => PsetUpdateKind::Membership,
        EventCode::PsetDeleted => PsetUpdateKind::Deleted,
        _ => return None,
    };
    Some(PsetUpdate {
        pset: ev.get(keys::PSET_NAME)?.as_str()?.to_owned(),
        epoch: ev.get(keys::PSET_EPOCH)?.as_u64()?,
        members: ev
            .get(keys::PSET_MEMBERS)
            .and_then(|v| v.as_proc_list())
            .map(|m| m.to_vec())
            .unwrap_or_default(),
        kind,
        ctx: ev.ctx,
    })
}

impl PsetWatcher {
    /// Poll for the next pset change, if any is queued.
    pub fn try_next(&self) -> Option<PsetUpdate> {
        while let Some(ev) = self.stream.try_next() {
            if let Some(u) = decode(ev) {
                return Some(u);
            }
        }
        None
    }

    /// Wait up to `timeout` for the next pset change.
    pub fn next_timeout(&self, timeout: Duration) -> Option<PsetUpdate> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            let ev = self.stream.next_timeout(left)?;
            if let Some(u) = decode(ev) {
                return Some(u);
            }
        }
    }

    /// Number of queued (undecoded) events.
    pub fn pending(&self) -> usize {
        self.stream.pending()
    }
}

impl Session {
    /// Subscribe this session to pset-change events. The subscription
    /// replays the registry's current state (one synthesized `Defined` per
    /// live pset, in epoch order) before live events, so a late subscriber
    /// starts from a consistent snapshot.
    pub fn watch_psets(&self) -> Result<PsetWatcher> {
        self.check_live()?;
        Ok(PsetWatcher { stream: self.process().pmix().watch_psets() })
    }

    /// `MPI_Group_from_session_pset` pinned at `epoch`: resolves the pset
    /// membership only if the registry is still exactly at that version.
    /// A mismatch returns an [`ErrClass::Stale`] error naming both epochs,
    /// so callers distinguish "the world moved on" from "no such pset".
    pub fn group_from_pset_at(&self, name: &str, epoch: u64) -> Result<MpiGroup> {
        self.check_live()?;
        let process = self.process().clone();
        let registry = process.universe().registry();
        let (current, members) = registry.pset_members_versioned(name).map_err(|_| {
            MpiError::new(ErrClass::Arg, format!("unknown process set '{name}'"))
        })?;
        if current != epoch {
            return Err(MpiError::new(
                ErrClass::Stale,
                format!("pset '{name}' is at epoch {current}, caller pinned epoch {epoch}"),
            ));
        }
        let refs: Vec<ProcRef> = members
            .iter()
            .map(|proc| {
                let entry = registry.locate(proc)?;
                Ok(ProcRef { proc: proc.clone(), endpoint: entry.endpoint })
            })
            .collect::<Result<_>>()?;
        Ok(MpiGroup::from_members(refs).bind(process))
    }
}

/// What [`ElasticComm::next_rebuild`] did with the change it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rebuild {
    /// A replacement communicator was built at this epoch; the previous
    /// one was locally retired.
    Rebuilt {
        /// The epoch the new communicator corresponds to.
        epoch: u64,
    },
    /// The calling process is no longer a member of the pset: the old
    /// communicator was locally retired and no new one exists.
    Retired {
        /// The epoch at which this process left the membership.
        epoch: u64,
    },
    /// The pset itself was deleted.
    Deleted {
        /// The deletion epoch.
        epoch: u64,
    },
}

/// A communicator that tracks one pset across churn.
///
/// [`ElasticComm::establish`] subscribes to pset events and builds the
/// initial communicator from the first observed membership containing the
/// caller; [`ElasticComm::next_rebuild`] consumes one change at a time,
/// replacing the communicator (grow/shrink) or retiring it (the caller
/// departed, or the pset was deleted).
pub struct ElasticComm {
    session: Session,
    pset: String,
    watcher: PsetWatcher,
    comm: Option<Comm>,
    epoch: u64,
    members: Vec<ProcId>,
}

impl ElasticComm {
    /// Subscribe and build the initial communicator; waits up to `timeout`
    /// for an event naming `pset` with the caller in its membership.
    pub fn establish(session: &Session, pset: &str, timeout: Duration) -> Result<ElasticComm> {
        let watcher = session.watch_psets()?;
        let mut ec = ElasticComm {
            session: session.clone(),
            pset: pset.to_owned(),
            watcher,
            comm: None,
            epoch: 0,
            members: Vec::new(),
        };
        match ec.next_rebuild(timeout)? {
            Rebuild::Rebuilt { .. } => Ok(ec),
            Rebuild::Retired { epoch } | Rebuild::Deleted { epoch } => Err(MpiError::new(
                ErrClass::Group,
                format!("caller is not a member of pset '{pset}' at epoch {epoch}"),
            )),
        }
    }

    /// The pset this communicator tracks.
    pub fn pset(&self) -> &str {
        &self.pset
    }

    /// The epoch the current communicator was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current communicator, if the caller is still a member.
    pub fn comm(&self) -> Option<&Comm> {
        self.comm.as_ref()
    }

    /// Wait up to `timeout` for the next change to this pset and apply it.
    ///
    /// On a membership change containing the caller: locally retire the
    /// old communicator (counting any unexpected messages still queued on
    /// it — traffic addressed to the stale epoch), invalidate the PML
    /// handshake cache for every departed peer, and build the replacement
    /// via `MPI_Comm_create_from_group` tagged `rebuild:{pset}@{epoch}` —
    /// a collective over exactly the members of that epoch.
    ///
    /// A fault racing the rebuild is survived, not surfaced: if a member
    /// of the pinned epoch dies after the epoch is pinned but before the
    /// `create_from_group` fan-in completes, the fan-in fails *typed* on
    /// every survivor (the PMIx servers detect the dead member at their
    /// own first arrival — it never stalls), and this loop re-enters to
    /// consume the death's own membership event and rebuild at the newer
    /// epoch. A fan-in that times out instead (e.g. a partition straddling
    /// the rebuild) is retried at the same epoch while the caller's budget
    /// lasts. Only a non-transient error (or the budget expiring) returns
    /// `Err`.
    pub fn next_rebuild(&mut self, timeout: Duration) -> Result<Rebuild> {
        let deadline = std::time::Instant::now() + timeout;
        let mut stale_unexpected = 0u64;
        'events: loop {
            let update = loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                let u = self.watcher.next_timeout(left).ok_or_else(|| {
                    MpiError::new(
                        ErrClass::Timeout,
                        format!("no change to pset '{}' within {timeout:?}", self.pset),
                    )
                })?;
                if u.pset == self.pset {
                    break u;
                }
            };
            let process = self.session.process().clone();
            let obs = process.obs();
            let p = process.proc().to_string();
            let me = process.proc().clone();

            // Retire the old communicator first, whatever happens next: any
            // message still unexpected-queued on it was addressed to a stale
            // epoch and must never be delivered to the rebuilt communicator.
            stale_unexpected += self.retire_current(&update, &obs, &p);

            match update.kind {
                PsetUpdateKind::Deleted => {
                    self.epoch = update.epoch;
                    self.members.clear();
                    return Ok(Rebuild::Deleted { epoch: update.epoch });
                }
                _ if !update.members.contains(&me) => {
                    self.epoch = update.epoch;
                    self.members = update.members;
                    return Ok(Rebuild::Retired { epoch: self.epoch });
                }
                _ => {}
            }
            let comm = loop {
                let mut span = obs.span(
                    &p,
                    "session.rebuild",
                    &format!("{}@{}", self.pset, update.epoch),
                );
                if let Some(ctx) = update.ctx {
                    span.link(ctx);
                }
                span.add_work(update.members.len() as u64);
                let _entered = span.enter();
                let group = self
                    .session
                    .group_from_pset_at(&self.pset, update.epoch)
                    .or_else(|e| {
                        // The registry may legitimately be *ahead* of this
                        // event (the driver already issued the next churn);
                        // fall back to the membership the event itself
                        // carries — that is the epoch-consistent snapshot.
                        if e.class != ErrClass::Stale {
                            return Err(e);
                        }
                        let registry = process.universe().registry();
                        let refs: Vec<ProcRef> = update
                            .members
                            .iter()
                            .map(|proc| {
                                let entry = registry.locate(proc)?;
                                Ok(ProcRef { proc: proc.clone(), endpoint: entry.endpoint })
                            })
                            .collect::<Result<_>>()?;
                        Ok(MpiGroup::from_members(refs).bind(process.clone()))
                    })?;
                match Comm::create_from_group(
                    &group,
                    &format!("rebuild:{}@{}", self.pset, update.epoch),
                ) {
                    Ok(c) => break c,
                    Err(e)
                        if matches!(
                            e.class,
                            ErrClass::ProcFailed | ErrClass::ProcTerminated
                        ) =>
                    {
                        // A second fault landed mid-rebuild. The failure
                        // bridge marks the death before it shrinks psets,
                        // so this pset's next membership event is already
                        // queued (or imminent) on our watcher: consume it
                        // and rebuild at the newer epoch.
                        obs.counter(&p, "session", "rebuild_reentered").inc();
                        obs.event(
                            &p,
                            "session",
                            "rebuild.reenter",
                            vec![
                                ("pset".into(), self.pset.as_str().into()),
                                ("epoch".into(), update.epoch.into()),
                                ("error".into(), e.to_string().into()),
                            ],
                        );
                        continue 'events;
                    }
                    Err(e)
                        if e.class == ErrClass::Timeout
                            && std::time::Instant::now() < deadline =>
                    {
                        // Transient: the collective aborted symmetrically
                        // on every participant, so a retry at the same
                        // epoch is well-formed. Keep trying while the
                        // caller's budget lasts.
                        obs.counter(&p, "session", "rebuild_retries").inc();
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };
            let pgcid = comm.excid().map(|e| e.pgcid).unwrap_or(0);
            self.comm = Some(comm);
            self.epoch = update.epoch;
            self.members = update.members;
            obs.counter(&p, "session", "rebuilds").inc();
            obs.event(
                &p,
                "session",
                "session.rebuild",
                vec![
                    ("pset".into(), self.pset.as_str().into()),
                    ("epoch".into(), self.epoch.into()),
                    ("pgcid".into(), pgcid.into()),
                    ("stale_unexpected".into(), stale_unexpected.into()),
                ],
            );
            return Ok(Rebuild::Rebuilt { epoch: self.epoch });
        }
    }

    /// Locally retire the current communicator ahead of `update` taking
    /// effect: count stale unexpected messages, invalidate departed peers
    /// in the handshake cache, release the route. Returns the stale count.
    fn retire_current(
        &mut self,
        update: &PsetUpdate,
        obs: &std::sync::Arc<obs::Registry>,
        p: &str,
    ) -> u64 {
        let Some(old) = self.comm.take() else { return 0 };
        let stale_unexpected = old.unexpected_queued() as u64;
        let mut departed = 0u64;
        for member in old.group().iter() {
            if !update.members.contains(&member.proc)
                && old.process().pml().invalidate_peer(member.endpoint)
            {
                departed += 1;
            }
        }
        old.abandon_local();
        obs.event(
            p,
            "session",
            "elastic.retire",
            vec![
                ("pset".into(), self.pset.as_str().into()),
                ("epoch".into(), update.epoch.into()),
                ("stale_unexpected".into(), stale_unexpected.into()),
                ("departed_invalidated".into(), departed.into()),
            ],
        );
        stale_unexpected
    }
}

impl Drop for ElasticComm {
    fn drop(&mut self) {
        if let Some(comm) = self.comm.take() {
            comm.abandon_local();
        }
    }
}
