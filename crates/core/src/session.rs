//! The MPI Sessions API (paper §I and §III-B6).
//!
//! `MPI_Session_init` is **local** (no communication), thread-safe, and
//! callable any number of times — including after all previous sessions
//! (and the WPM) have been finalized. A session exposes the runtime's
//! process sets; a pset name becomes an [`MpiGroup`]
//! (`MPI_Group_from_session_pset`), and a group becomes a communicator
//! (`MPI_Comm_create_from_group` — see [`crate::comm::Comm`]).
//!
//! The three built-in psets of the prototype are provided: `mpi://world`,
//! `mpi://self` and `mpi://shared` (the processes of the local node);
//! additional psets come from PMIx (defined at launch via
//! `JobSpec::with_pset`, the `prun --pset` analog).

use crate::attr::AttrStore;
use crate::errhandler::ErrHandler;
use crate::error::{ErrClass, MpiError, Result};
use crate::group::{MpiGroup, ProcRef};
use crate::info::{keys, Info};
use crate::instance::{MpiProcess, SESSION_MIN_SUBSYSTEMS};
use crate::request::{stage, SetupRequest, SetupStep};
use prrte::ProcCtx;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Built-in pset: every process of the job.
pub const PSET_WORLD: &str = "mpi://world";
/// Built-in pset: the calling process alone.
pub const PSET_SELF: &str = "mpi://self";
/// Built-in pset: the processes sharing the caller's node.
pub const PSET_SHARED: &str = "mpi://shared";

/// MPI thread support levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThreadLevel {
    /// `MPI_THREAD_SINGLE`
    Single,
    /// `MPI_THREAD_FUNNELED`
    Funneled,
    /// `MPI_THREAD_SERIALIZED`
    Serialized,
    /// `MPI_THREAD_MULTIPLE`
    Multiple,
}

impl ThreadLevel {
    /// Parse the proposal's `thread_level` info value.
    pub fn from_info_value(v: &str) -> Option<ThreadLevel> {
        Some(match v {
            "MPI_THREAD_SINGLE" => ThreadLevel::Single,
            "MPI_THREAD_FUNNELED" => ThreadLevel::Funneled,
            "MPI_THREAD_SERIALIZED" => ThreadLevel::Serialized,
            "MPI_THREAD_MULTIPLE" => ThreadLevel::Multiple,
            _ => return None,
        })
    }
}

struct SessionInner {
    id: u64,
    process: Arc<MpiProcess>,
    thread_level: ThreadLevel,
    errh: ErrHandler,
    info: Info,
    attrs: AttrStore,
    finalized: AtomicBool,
    /// Fence-free (lazy) init: peer endpoints are resolved on demand by
    /// the first send instead of being required up front (DESIGN.md §14).
    lazy: bool,
}

/// An MPI session handle.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl Session {
    /// `MPI_Session_init`: local, light-weight, thread-safe, repeatable.
    ///
    /// Initializes only the minimum subsystems a session object needs
    /// (refcounted; see [`crate::instance`]). Implemented as the
    /// `i`-variant plus `wait` (quiet — same engine, same observable
    /// behavior as the historical blocking call).
    pub fn init(
        ctx: &ProcCtx,
        requested: ThreadLevel,
        errh: ErrHandler,
        info: &Info,
    ) -> Result<Session> {
        Self::init_i_inner(ctx, requested, errh, info, true).wait()
    }

    /// Nonblocking `MPI_Session_init`: returns a [`SetupRequest`] whose
    /// stages split the two costs the blocking call times — bringing up
    /// the library's *resources* (`resources` stage: subsystems,
    /// refcounted) and constructing the session *handle* itself
    /// (`handle` stage: local, cheap). Dropping the request before
    /// claiming the session finalizes it.
    pub fn init_i(
        ctx: &ProcCtx,
        requested: ThreadLevel,
        errh: ErrHandler,
        info: &Info,
    ) -> SetupRequest<Session> {
        Self::init_i_inner(ctx, requested, errh, info, false)
    }

    fn init_i_inner(
        ctx: &ProcCtx,
        requested: ThreadLevel,
        errh: ErrHandler,
        info: &Info,
        quiet: bool,
    ) -> SetupRequest<Session> {
        let process = MpiProcess::obtain(ctx);
        let obs = process.obs();
        let p = process.proc().to_string();
        let init_span = obs.span(&p, "session.init", "");
        let info = info.dup();
        // The info object overrides the universe-wide default (the
        // `pmix.init_mode` cvar, seeded from `INIT_MODE`).
        let lazy = match info.get(keys::INIT_MODE) {
            Some(v) => v == "lazy",
            None => process.universe().lazy_init_default(),
        };
        let first = stage("resources", {
            let mut armed = Some((process.clone(), requested, errh, info));
            move || {
                let (process, requested, errh, info) =
                    armed.take().expect("resources stage runs once");
                let obs = process.obs();
                let p = process.proc().to_string();
                let t_resources = std::time::Instant::now();
                let mut res_span = obs.span(&p, "session.resources", "");
                let id = process.acquire_instance(SESSION_MIN_SUBSYSTEMS);
                res_span.add_work(SESSION_MIN_SUBSYSTEMS.len() as u64);
                res_span.end();
                let resources = t_resources.elapsed();
                obs.histogram(&p, "session", "init_resources_ns").record(resources);
                if lazy {
                    // Fence-free init: one extra local stage that publishes
                    // this rank's business card (put + commit, NO fence) and
                    // installs the on-demand peer resolver. Still zero
                    // synchronization with any peer.
                    let mut armed = Some((process, requested, errh, info, id));
                    Ok(SetupStep::Next(stage("publish", move || {
                        let (process, requested, errh, info, id) =
                            armed.take().expect("publish stage runs once");
                        let obs = process.obs();
                        let p = process.proc().to_string();
                        let mut pub_span = obs.span(&p, "session.publish", "");
                        let pmix = process.pmix();
                        pmix.put(
                            pmix::value::keys::ENDPOINT,
                            pmix::PmixValue::U64(process.pml().endpoint_id().0),
                        );
                        pmix.commit();
                        process.pml().install_resolver(pmix::PeerResolver::new(pmix));
                        pub_span.add_work(1);
                        pub_span.end();
                        obs.counter(&p, "session", "lazy_inits").inc();
                        Ok(SetupStep::Next(Self::handle_stage(
                            process, requested, errh, info, id, true,
                        )))
                    })))
                } else {
                    Ok(SetupStep::Next(Self::handle_stage(
                        process, requested, errh, info, id, false,
                    )))
                }
            }
        });
        SetupRequest::issue(
            process,
            "session_init",
            Some(init_span),
            quiet,
            first,
            Some(Box::new(|s: Session| {
                let _ = s.finalize();
            })),
        )
    }

    /// The final init stage, shared by the eager and lazy paths:
    /// constructs the session handle itself (local, cheap).
    fn handle_stage(
        process: Arc<MpiProcess>,
        requested: ThreadLevel,
        errh: ErrHandler,
        info: Info,
        id: u64,
        lazy: bool,
    ) -> Box<dyn crate::request::SetupStage<Session>> {
        let mut armed = Some((process, requested, errh, info, id));
        stage("handle", move || {
            let (process, requested, errh, info, id) =
                armed.take().expect("handle stage runs once");
            let obs = process.obs();
            let p = process.proc().to_string();
            let t_handle = std::time::Instant::now();
            let mut handle_span = obs.span(&p, "session.handle", "");
            handle_span.add_work(1);
            // Honor PML tuning from the info object.
            if let Some(limit) = info.get_int(keys::EAGER_LIMIT) {
                if limit > 0 {
                    process.pml().set_eager_limit(limit as usize);
                }
            }
            let thread_level = info
                .get(keys::THREAD_LEVEL)
                .and_then(|v| ThreadLevel::from_info_value(&v))
                .unwrap_or(requested);
            let session = Session {
                inner: Arc::new(SessionInner {
                    id,
                    process: process.clone(),
                    thread_level,
                    errh,
                    info,
                    attrs: AttrStore::new(),
                    finalized: AtomicBool::new(false),
                    lazy,
                }),
            };
            handle_span.end();
            obs.histogram(&p, "session", "init_handle_ns").record(t_handle.elapsed());
            obs.counter(&p, "session", "sessions_initialized").inc();
            Ok(SetupStep::Done(session))
        })
    }

    /// Whether this session was initialized in lazy (fence-free) mode.
    pub fn is_lazy(&self) -> bool {
        self.inner.lazy
    }

    /// The granted thread support level.
    pub fn thread_level(&self) -> ThreadLevel {
        self.inner.thread_level
    }

    /// Session-local id (diagnostics).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The session's error handler.
    pub fn errhandler(&self) -> &ErrHandler {
        &self.inner.errh
    }

    /// The session's info object (`MPI_Session_get_info`).
    pub fn info(&self) -> Info {
        self.inner.info.dup()
    }

    /// The session's attribute store.
    pub fn attrs(&self) -> &AttrStore {
        &self.inner.attrs
    }

    /// The owning process (crate plumbing).
    pub(crate) fn process(&self) -> &Arc<MpiProcess> {
        &self.inner.process
    }

    pub(crate) fn check_live(&self) -> Result<()> {
        if self.inner.finalized.load(Ordering::Acquire) {
            return Err(MpiError::new(ErrClass::Session, "session has been finalized"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Process sets
    // ------------------------------------------------------------------

    /// `MPI_Session_get_num_psets`.
    pub fn num_psets(&self) -> Result<usize> {
        Ok(self.pset_names()?.len())
    }

    /// All pset names visible to this session: the three built-ins plus
    /// everything the runtime defines (`PMIX_QUERY_PSET_NAMES`).
    pub fn pset_names(&self) -> Result<Vec<String>> {
        self.check_live()?;
        let mut names = vec![
            PSET_WORLD.to_owned(),
            PSET_SELF.to_owned(),
            PSET_SHARED.to_owned(),
        ];
        names.extend(self.inner.process.pmix().query_pset_names());
        Ok(names)
    }

    /// `MPI_Session_get_nth_pset`.
    pub fn nth_pset(&self, n: usize) -> Result<String> {
        self.pset_names()?
            .get(n)
            .cloned()
            .ok_or_else(|| MpiError::new(ErrClass::Arg, format!("pset index {n} out of range")))
    }

    /// `MPI_Session_get_pset_info`: currently the membership size under
    /// the standard key `mpi_size`.
    pub fn pset_info(&self, name: &str) -> Result<Info> {
        let members = self.resolve_pset(name)?;
        let info = Info::new();
        info.set("mpi_size", &members.len().to_string());
        Ok(info)
    }

    /// `MPI_Group_from_session_pset`: local resolution of a pset name into
    /// a group bound to this session's process (`i`-variant + `wait`).
    pub fn group_from_pset(&self, name: &str) -> Result<MpiGroup> {
        self.igroup_inner(name, true).wait()
    }

    /// Nonblocking `MPI_Group_from_session_pset`: a single-`resolve`-stage
    /// [`SetupRequest`]. Resolution is local today, but routing it through
    /// the engine lets pset lookups interleave with in-flight PMIx
    /// constructions under one progress loop.
    pub fn igroup_from_pset(&self, name: &str) -> SetupRequest<MpiGroup> {
        self.igroup_inner(name, false)
    }

    fn igroup_inner(&self, name: &str, quiet: bool) -> SetupRequest<MpiGroup> {
        let sess = self.clone();
        let name = name.to_owned();
        let first = stage("resolve", move || {
            let members = sess.resolve_pset(&name)?;
            Ok(SetupStep::Done(
                MpiGroup::from_members(members)
                    .bind(sess.inner.process.clone())
                    .mark_lazy(sess.inner.lazy),
            ))
        });
        SetupRequest::issue(
            self.inner.process.clone(),
            "group_from_pset",
            None,
            quiet,
            first,
            None,
        )
    }

    fn resolve_pset(&self, name: &str) -> Result<Vec<ProcRef>> {
        self.check_live()?;
        let process = &self.inner.process;
        let registry = process.universe().registry();
        let me = process.proc();
        let nspace = registry.namespace(me.nspace())?;
        let to_ref = |e: &pmix::NamespaceInfo| -> Vec<ProcRef> {
            e.procs()
                .iter()
                .map(|p| ProcRef { proc: p.proc.clone(), endpoint: p.endpoint })
                .collect()
        };
        match name {
            PSET_WORLD => Ok(to_ref(&nspace)),
            PSET_SELF => {
                let entry = registry.locate(me)?;
                Ok(vec![ProcRef { proc: me.clone(), endpoint: entry.endpoint }])
            }
            PSET_SHARED => Ok(nspace
                .procs()
                .iter()
                .filter(|p| p.node == process.node())
                .map(|p| ProcRef { proc: p.proc.clone(), endpoint: p.endpoint })
                .collect()),
            other => {
                let members = registry.pset_members(other).map_err(|_| {
                    MpiError::new(ErrClass::Arg, format!("unknown process set '{other}'"))
                })?;
                members
                    .into_iter()
                    .map(|proc| {
                        let entry = registry.locate(&proc)?;
                        Ok(ProcRef { proc, endpoint: entry.endpoint })
                    })
                    .collect()
            }
        }
    }

    // ------------------------------------------------------------------
    // Finalize
    // ------------------------------------------------------------------

    /// `MPI_Session_finalize`: releases this session's subsystem
    /// references; the last finalize in the process tears the library
    /// down (cleanup callbacks) so a later `Session_init` starts fresh.
    pub fn finalize(self) -> Result<()> {
        self.check_live()?;
        self.inner.finalized.store(true, Ordering::Release);
        self.inner.process.release_instance(SESSION_MIN_SUBSYSTEMS);
        Ok(())
    }

    /// Whether the session is finalized.
    pub fn is_finalized(&self) -> bool {
        self.inner.finalized.load(Ordering::Acquire)
    }
}

impl Drop for SessionInner {
    fn drop(&mut self) {
        // A dropped-but-never-finalized session still releases its
        // subsystem references so the process can reach the pristine state
        // (Rust RAII in place of the C requirement to always finalize).
        if !self.finalized.load(Ordering::Acquire) {
            self.process.release_instance(SESSION_MIN_SUBSYSTEMS);
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.inner.id)
            .field("thread_level", &self.inner.thread_level)
            .field("finalized", &self.is_finalized())
            .finish()
    }
}
