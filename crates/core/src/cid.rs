//! Communicator identifiers: the 128-bit extended CID (exCID) and its
//! derivation rules (paper §III-B3).
//!
//! An exCID is two 64-bit fields:
//!
//! * the **PGCID** obtained from PMIx group construction (non-zero; `0`
//!   marks built-in World-Process-Model communicators);
//! * a **derivation** field of eight 8-bit subfields used to name derived
//!   communicators (`MPI_Comm_dup` chains) without a new PGCID.
//!
//! Each communicator tracks its *active subfield*. A communicator built
//! directly from a PGCID starts with active subfield 7 and derivation 0.
//! Deriving a child increments the parent's counter for its active
//! subfield, stamps that value into the child's exCID at the parent's
//! active position, and gives the child `active = parent.active - 1`.
//! A fresh PGCID is required when the parent's active subfield is 0, the
//! counter would pass 255, or not all processes of the parent participate
//! (`MPI_Comm_create_group`).
//!
//! The 16-bit local CID (communicator-table index) is unchanged from the
//! classic design and remains what the optimized 14-byte match header
//! carries; this module also houses the table allocator for it.

use crate::error::{ErrClass, MpiError, Result};

/// Maximum local CIDs per process (16-bit index space).
pub const MAX_LOCAL_CIDS: usize = u16::MAX as usize + 1;

/// A 128-bit extended communicator identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExCid {
    /// PGCID from PMIx (0 = built-in WPM communicator).
    pub pgcid: u64,
    /// Eight 8-bit derivation subfields (subfield 7 = most significant).
    pub derivation: u64,
}

impl ExCid {
    /// exCID for a communicator created directly from a PGCID.
    pub fn from_pgcid(pgcid: u64) -> Self {
        debug_assert!(pgcid != 0, "PGCIDs are guaranteed non-zero");
        Self { pgcid, derivation: 0 }
    }

    /// exCID for a built-in World Process Model communicator
    /// (`MPI_COMM_WORLD` = slot 0, `MPI_COMM_SELF` = slot 1, ...).
    pub fn builtin(slot: u8) -> Self {
        Self { pgcid: 0, derivation: slot as u64 }
    }

    /// Subfield value at position `i` (0..=7).
    pub fn subfield(&self, i: u8) -> u8 {
        debug_assert!(i < 8);
        ((self.derivation >> (8 * i as u64)) & 0xff) as u8
    }

    /// Copy of this exCID with subfield `i` set to `v`.
    pub fn with_subfield(&self, i: u8, v: u8) -> Self {
        debug_assert!(i < 8);
        let shift = 8 * i as u64;
        let cleared = self.derivation & !(0xffu64 << shift);
        Self { pgcid: self.pgcid, derivation: cleared | ((v as u64) << shift) }
    }

    /// Serialize to 16 little-endian bytes (wire format for the extended
    /// match header).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.pgcid.to_le_bytes());
        out[8..].copy_from_slice(&self.derivation.to_le_bytes());
        out
    }

    /// Deserialize from 16 bytes.
    pub fn decode(bytes: &[u8]) -> Self {
        Self {
            pgcid: u64::from_le_bytes(bytes[..8].try_into().expect("16-byte excid")),
            derivation: u64::from_le_bytes(bytes[8..16].try_into().expect("16-byte excid")),
        }
    }
}

impl std::fmt::Display for ExCid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "excid({:#x}.{:#018x})", self.pgcid, self.derivation)
    }
}

/// Per-communicator derivation bookkeeping: which subfield this
/// communicator writes into when deriving children, and the next value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeriveState {
    /// Active subfield (7 for PGCID-fresh communicators, counts down).
    pub active: u8,
    /// Next child counter for the active subfield (starts at 1; the parent
    /// itself holds value 0 there).
    pub next_child: u16,
}

impl DeriveState {
    /// State for a communicator freshly minted from a PGCID.
    pub fn fresh() -> Self {
        Self { active: 7, next_child: 1 }
    }

    /// State for a derived communicator one level down.
    fn child_of(parent: &DeriveState) -> Self {
        debug_assert!(parent.active > 0);
        Self { active: parent.active - 1, next_child: 1 }
    }
}

/// Why local subfield derivation cannot produce another child exCID and a
/// fresh PGCID is required instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveExhausted {
    /// The chain is 8 levels deep: the active subfield counted down to 0
    /// and there is no position left to write a child value into.
    Depth,
    /// 255 children were already derived at the active subfield; the next
    /// value would wrap the 8-bit counter and collide with child #0.
    Width,
}

impl DeriveExhausted {
    /// Stable label for counters/events.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeriveExhausted::Depth => "depth",
            DeriveExhausted::Width => "width",
        }
    }
}

impl std::fmt::Display for DeriveExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeriveExhausted::Depth => write!(f, "derivation chain 8 levels deep"),
            DeriveExhausted::Width => write!(f, "255 children derived at active subfield"),
        }
    }
}

/// Attempt to derive a child exCID from `parent` with derivation state
/// `state` (mutated on success). The error says *why* a fresh PGCID is
/// required, so callers can count and report the two exhaustion modes
/// separately — the 8-bit counter must never silently wrap, or two
/// children would alias one exCID and the PML would cross-deliver.
pub fn try_derive_excid(
    parent: &ExCid,
    state: &mut DeriveState,
) -> std::result::Result<(ExCid, DeriveState), DeriveExhausted> {
    if state.active == 0 {
        return Err(DeriveExhausted::Depth);
    }
    if state.next_child > 255 {
        return Err(DeriveExhausted::Width);
    }
    let value = state.next_child as u8;
    state.next_child += 1;
    let child = parent.with_subfield(state.active, value);
    let child_state = DeriveState::child_of(state);
    Ok((child, child_state))
}

/// [`try_derive_excid`] for callers that only care whether derivation is
/// possible, not why it stopped.
pub fn derive_excid(parent: &ExCid, state: &mut DeriveState) -> Option<(ExCid, DeriveState)> {
    try_derive_excid(parent, state).ok()
}

/// The per-process local-CID table allocator: lowest-free-index policy,
/// exactly like Open MPI's communicator array.
#[derive(Debug, Default)]
pub struct CidTable {
    used: Vec<bool>,
}

impl CidTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lowest free index at or above `from`, without claiming it.
    pub fn lowest_free(&self, from: u16) -> Result<u16> {
        let start = from as usize;
        for i in start..MAX_LOCAL_CIDS {
            if self.used.get(i).copied() != Some(true) {
                return Ok(i as u16);
            }
        }
        Err(MpiError::new(ErrClass::Other, "local CID space exhausted"))
    }

    /// Claim a specific index. Errors when already in use.
    pub fn claim(&mut self, idx: u16) -> Result<()> {
        let i = idx as usize;
        if self.used.len() <= i {
            self.used.resize(i + 1, false);
        }
        if self.used[i] {
            return Err(MpiError::new(ErrClass::Intern, format!("local CID {idx} already in use")));
        }
        self.used[i] = true;
        Ok(())
    }

    /// Claim the lowest free index at or above `from`.
    pub fn claim_lowest(&mut self, from: u16) -> Result<u16> {
        let idx = self.lowest_free(from)?;
        self.claim(idx)?;
        Ok(idx)
    }

    /// Release an index (communicator freed).
    pub fn release(&mut self, idx: u16) {
        if let Some(slot) = self.used.get_mut(idx as usize) {
            *slot = false;
        }
    }

    /// Whether an index is currently in use.
    pub fn in_use(&self, idx: u16) -> bool {
        self.used.get(idx as usize).copied() == Some(true)
    }

    /// Number of indices currently in use.
    pub fn count_used(&self) -> usize {
        self.used.iter().filter(|b| **b).count()
    }

    /// The in-use indices, ascending (introspection snapshots).
    pub fn used_indices(&self) -> Vec<u16> {
        self.used
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.then_some(i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn builtin_excids_have_zero_pgcid() {
        let w = ExCid::builtin(0);
        let s = ExCid::builtin(1);
        assert_eq!(w.pgcid, 0);
        assert_ne!(w, s);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = ExCid { pgcid: 0xdead_beef_0123, derivation: 0x0807060504030201 };
        assert_eq!(ExCid::decode(&e.encode()), e);
    }

    #[test]
    fn subfield_accessors() {
        let e = ExCid { pgcid: 1, derivation: 0 }.with_subfield(7, 9).with_subfield(0, 3);
        assert_eq!(e.subfield(7), 9);
        assert_eq!(e.subfield(0), 3);
        assert_eq!(e.subfield(4), 0);
    }

    #[test]
    fn derive_chain_matches_paper_rules() {
        let root = ExCid::from_pgcid(42);
        let mut root_state = DeriveState::fresh();
        assert_eq!(root_state.active, 7);

        let (c1, mut c1_state) = derive_excid(&root, &mut root_state).unwrap();
        assert_eq!(c1.subfield(7), 1);
        assert_eq!(c1_state.active, 6);

        let (c2, _) = derive_excid(&root, &mut root_state).unwrap();
        assert_eq!(c2.subfield(7), 2);

        let (g1, g1_state) = derive_excid(&c1, &mut c1_state).unwrap();
        assert_eq!(g1.subfield(7), 1);
        assert_eq!(g1.subfield(6), 1);
        assert_eq!(g1_state.active, 5);
        assert_ne!(g1, c1);
        assert_ne!(g1, c2);
    }

    #[test]
    fn derivation_exhausts_after_255_children() {
        let root = ExCid::from_pgcid(7);
        let mut state = DeriveState::fresh();
        let mut seen = HashSet::new();
        seen.insert(root);
        for _ in 0..255 {
            let (c, _) = derive_excid(&root, &mut state).expect("within budget");
            assert!(seen.insert(c), "collision in dup chain");
        }
        assert_eq!(
            try_derive_excid(&root, &mut state),
            Err(DeriveExhausted::Width),
            "256th dup needs a new PGCID"
        );
        // The counter must not move on a refused derivation: a retry after
        // exhaustion reports the same error instead of wrapping to 0.
        assert_eq!(state.next_child, 256);
        assert_eq!(try_derive_excid(&root, &mut state), Err(DeriveExhausted::Width));
    }

    #[test]
    fn derivation_exhausts_at_depth_8() {
        let mut cur = ExCid::from_pgcid(9);
        let mut state = DeriveState::fresh();
        for depth in 0..7 {
            let (c, s) = derive_excid(&cur, &mut state)
                .unwrap_or_else(|| panic!("depth {depth} should derive"));
            cur = c;
            state = s;
        }
        assert_eq!(state.active, 0);
        assert_eq!(
            try_derive_excid(&cur, &mut state),
            Err(DeriveExhausted::Depth),
            "depth 8 needs a new PGCID"
        );
    }

    #[test]
    fn cid_table_lowest_free_policy() {
        let mut t = CidTable::new();
        assert_eq!(t.claim_lowest(0).unwrap(), 0);
        assert_eq!(t.claim_lowest(0).unwrap(), 1);
        assert_eq!(t.claim_lowest(0).unwrap(), 2);
        t.release(1);
        assert_eq!(t.claim_lowest(0).unwrap(), 1);
        assert_eq!(t.claim_lowest(2).unwrap(), 3);
        assert!(t.claim(0).is_err());
        assert_eq!(t.count_used(), 4);
    }

    proptest! {
        /// Any sequence of derivations from a single PGCID yields unique
        /// exCIDs — the invariant that lets matching trust the exCID.
        #[test]
        fn prop_derivation_tree_is_collision_free(ops in proptest::collection::vec(0usize..6, 1..200)) {
            let root = ExCid::from_pgcid(1234);
            let mut nodes = vec![(root, DeriveState::fresh())];
            let mut seen: HashSet<ExCid> = HashSet::new();
            seen.insert(root);
            for pick in ops {
                let idx = pick % nodes.len();
                let (parent, mut state) = nodes[idx];
                if let Some((child, cs)) = derive_excid(&parent, &mut state) {
                    nodes[idx].1 = state;
                    prop_assert!(seen.insert(child), "derived exCID collided: {child}");
                    nodes.push((child, cs));
                } else {
                    // Exhaustion is a legal outcome, never a collision.
                    nodes[idx].1 = state;
                }
            }
        }

        /// Claim/release sequences keep the lowest-free invariant.
        #[test]
        fn prop_cid_table_reuses_lowest(releases in proptest::collection::vec(0u16..32, 0..16)) {
            let mut t = CidTable::new();
            for _ in 0..32 { t.claim_lowest(0).unwrap(); }
            let mut released: Vec<u16> = releases.clone();
            released.sort_unstable();
            released.dedup();
            for r in &released { t.release(*r); }
            for _ in 0..released.len() {
                let got = t.claim_lowest(0).unwrap();
                prop_assert!(released.contains(&got), "claimed {got} which was never freed");
            }
            prop_assert_eq!(t.count_used(), 32);
        }

        #[test]
        fn prop_excid_roundtrip(pgcid in 1u64.., derivation: u64) {
            let e = ExCid { pgcid, derivation };
            prop_assert_eq!(ExCid::decode(&e.encode()), e);
        }
    }
}
