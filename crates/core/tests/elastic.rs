//! Dynamic process sets end to end: grow the job, kill a rank, retire a
//! rank gracefully, and have every survivor follow the pset through its
//! epochs with [`ElasticComm`] rebuilds.

use mpi_sessions::{
    coll, ElasticComm, ErrClass, ErrHandler, Info, Rebuild, ReduceOp, Session, ThreadLevel,
};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::sync::mpsc;
use std::time::Duration;

const PSET: &str = "app://elastic";
const STEP: Duration = Duration::from_secs(20);

fn new_session(ctx: &prrte::ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

/// Collect `n` (rank, epoch, sum) acknowledgements and assert they all
/// carry `epoch` and `sum`.
fn expect_acks(rx: &mpsc::Receiver<(u32, u64, u32)>, n: usize, epoch: u64, sum: u32) {
    let mut ranks = Vec::new();
    for _ in 0..n {
        let (rank, e, s) = rx.recv_timeout(STEP).expect("ack before timeout");
        assert_eq!(e, epoch, "rank {rank} rebuilt at wrong epoch");
        assert_eq!(s, sum, "rank {rank} allreduce saw wrong membership");
        ranks.push(rank);
    }
    ranks.sort();
    ranks.dedup();
    assert_eq!(ranks.len(), n, "duplicate acks: {ranks:?}");
}

#[test]
fn elastic_grow_kill_retire_rebuilds_survivors() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 4));
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let spec = JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("elasticjob", spec, move |ctx| {
        let session = new_session(&ctx);
        let mut ec = ElasticComm::establish(&session, PSET, STEP).unwrap();
        let mut history: Vec<(u64, u32)> = Vec::new();
        loop {
            // One allreduce per epoch: a collective proof that every
            // member of this epoch is on the rebuilt communicator.
            let comm = ec.comm().expect("member has a communicator");
            let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            history.push((ec.epoch(), sum));
            tx.send((ctx.rank(), ec.epoch(), sum)).unwrap();
            match ec.next_rebuild(STEP) {
                Ok(Rebuild::Rebuilt { .. }) => continue,
                Ok(Rebuild::Retired { .. }) | Ok(Rebuild::Deleted { .. }) => break,
                Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
            }
        }
        session.finalize().unwrap();
        history
    });
    let ctl = handle.ctl();

    // Epoch 1: the launch-time definition; 4 members.
    expect_acks(&rx, 4, 1, 4);

    // Epoch 2: grow to 8. Newcomers establish at the grown epoch (their
    // replay already contains it); incumbents rebuild on the live event.
    let grown = ctl.spawn_ranks(4, Some(PSET));
    assert_eq!(grown, vec![4, 5, 6, 7]);
    expect_acks(&rx, 8, 2, 8);

    // Epoch 3: rank 7 dies; the failure bridge shrinks the pset and the 7
    // survivors rebuild without it.
    handle.kill_rank(7);
    expect_acks(&rx, 7, 3, 7);

    // Epoch 4: rank 6 retires gracefully — no failure event, its body
    // observes the shrink and returns, and retire_ranks joins it.
    let retired = ctl.retire_ranks(&[6], Some(PSET)).unwrap();
    assert_eq!(retired.len(), 1);
    assert_eq!(retired[0].last().copied(), Some((3, 7)), "rank 6 was on the epoch-3 comm");
    expect_acks(&rx, 6, 4, 6);

    // Delete the pset: the remaining 6 ranks exit their rebuild loops.
    launcher.universe().registry().undefine_pset(PSET);
    let out = handle.join().unwrap();
    assert_eq!(out.len(), 7, "6 survivors + the killed rank's thread");
    // Every surviving rank's history ends on the rebuilt communicator at
    // the final pset epoch with exactly the 6 remaining members.
    let mut final_states: Vec<(u64, u32)> =
        out.iter().filter_map(|h| h.last().copied()).collect();
    final_states.sort();
    assert_eq!(final_states.iter().filter(|s| **s == (4, 6)).count(), 6);

    let obs = launcher.universe().fabric().obs();
    // Departed peers (killed rank 7, retired rank 6) were explicitly
    // dropped from survivors' handshake caches during rebuild.
    assert!(
        obs.sum_counters("pml", "cache_invalidated") > 0,
        "rebuilds must invalidate departed peers"
    );
    // No rebuilt communicator inherited traffic addressed to a stale
    // epoch: every locally-retired comm had an empty unexpected queue.
    let retires = obs.events_named("elastic.retire");
    assert!(!retires.is_empty());
    for ev in &retires {
        assert_eq!(
            ev.attr("stale_unexpected").and_then(|v| v.as_u64()),
            Some(0),
            "stale message crossed an epoch boundary"
        );
    }
    // Epochs in the runtime's pset.update stream are strictly monotonic.
    let updates = obs.events_named("pset.update");
    let epochs: Vec<u64> =
        updates.iter().filter_map(|e| e.attr("epoch").and_then(|v| v.as_u64())).collect();
    assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs not monotonic: {epochs:?}");
    assert_eq!(obs.sum_counters("session", "rebuilds") as usize, 4 + 8 + 7 + 6);
}

#[test]
fn group_from_pset_at_detects_stale_epoch() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let (tx, rx) = mpsc::channel::<u64>();
    let spec = JobSpec::new(2).with_pset(PSET, vec![0, 1]);
    let handle = launcher.spawn_named("stalejob", spec, move |ctx| {
        let session = new_session(&ctx);
        let watcher = session.watch_psets().unwrap();
        let first = watcher.next_timeout(STEP).expect("replayed definition");
        assert_eq!(first.pset, PSET);
        // Pinned resolution succeeds at the current epoch...
        let g = session.group_from_pset_at(PSET, first.epoch).unwrap();
        assert_eq!(g.size(), 2);
        if ctx.rank() == 0 {
            tx.send(first.epoch).unwrap();
        }
        // ...and after the driver mutates the pset, the same pin is a
        // typed stale error, not a silently-different group.
        let second = watcher.next_timeout(STEP).expect("membership change");
        assert!(second.epoch > first.epoch);
        let err = session.group_from_pset_at(PSET, first.epoch).unwrap_err();
        assert_eq!(err.class, ErrClass::Stale);
        assert!(err.message.contains("epoch"));
        let g2 = session.group_from_pset_at(PSET, second.epoch).unwrap();
        session.finalize().unwrap();
        g2.size()
    });
    let epoch = rx.recv_timeout(STEP).unwrap();
    // Shrink the pset directly through the registry (driver-side churn).
    let registry = launcher.universe().registry();
    let (cur, members) = registry.pset_members_versioned(PSET).unwrap();
    assert_eq!(cur, epoch);
    let keep = vec![members[0].clone(), members[1].clone()];
    // Reorder-free update: same members, new epoch (a pure version bump
    // still invalidates pins — that is the point of the epoch).
    registry.update_pset_membership(PSET, keep, None).unwrap();
    let out = handle.join().unwrap();
    assert_eq!(out, vec![2, 2]);
}
