//! Fault-tolerance scenarios from paper §II-C: failure notification,
//! re-initialization after failure, and failure-scope isolation.

mod common;

use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::time::Duration;

fn new_session(ctx: &prrte::ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

#[test]
fn reinit_after_failure_with_survivors() {
    // §II-C(a): after a process failure, finalize and re-initialize MPI
    // over the surviving processes, then continue computing.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let handle = launcher.spawn(JobSpec::new(4), |ctx| {
        let session = new_session(&ctx);
        let notifier = session.failure_notifier().unwrap();
        // Phase 1: all four ranks communicate.
        let g = session.group_from_pset("mpi://world").unwrap();
        let comm = Comm::create_from_group(&g, "phase1").unwrap();
        let sum1 = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
        assert_eq!(sum1, 4);
        comm.free().unwrap();
        if ctx.rank() == 3 {
            // The victim: lingers after phase 1 until killed.
            std::thread::sleep(Duration::from_secs(5));
            return 0;
        }

        // Wait for the failure of rank 3.
        let victim = notifier.next_timeout(Duration::from_secs(10)).expect("failure event");
        assert_eq!(victim.rank(), 3);

        // Roll forward: finalize, re-init, rebuild over the survivors.
        session.finalize().unwrap();
        let session2 = new_session(&ctx);
        let survivors = session2.surviving_group("mpi://world").unwrap();
        assert_eq!(survivors.size(), 3);
        let comm2 = Comm::create_from_group(&survivors, "phase2").unwrap();
        let sum2 = coll::allreduce_t(&comm2, ReduceOp::Sum, &[1u32]).unwrap()[0];
        comm2.free().unwrap();
        session2.finalize().unwrap();
        sum2
    });
    // Let phase 1 complete, then kill rank 3.
    std::thread::sleep(Duration::from_millis(600));
    handle.kill_rank(3);
    let out = handle.join().unwrap();
    assert_eq!(out[0], 3);
    assert_eq!(out[1], 3);
    assert_eq!(out[2], 3);
}

#[test]
fn comm_create_from_group_fails_cleanly_when_member_dies() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let handle = launcher.spawn(JobSpec::new(2), |ctx| {
        if ctx.rank() == 1 {
            std::thread::sleep(Duration::from_secs(3));
            return None;
        }
        let session = new_session(&ctx);
        let g = session.group_from_pset("mpi://world").unwrap();
        // rank 1 never joins and is killed mid-construct.
        let err = Comm::create_from_group(&g, "doomed").unwrap_err();
        session.finalize().unwrap();
        Some(err.class)
    });
    std::thread::sleep(Duration::from_millis(300));
    handle.kill_rank(1);
    let out = handle.join().unwrap();
    assert_eq!(out[0], Some(mpi_sessions::ErrClass::ProcFailed));
}

#[test]
fn failure_scope_isolated_to_affected_session() {
    // §II-C(b): a failure among "client" processes must not poison the
    // "server"-internal session of the survivors.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let handle = launcher.spawn(JobSpec::new(4), |ctx| {
        // Ranks 0,1 = servers; ranks 2,3 = clients. Rank 3 will die.
        if ctx.rank() == 3 {
            std::thread::sleep(Duration::from_secs(5));
            return 0u32;
        }
        let session = new_session(&ctx);
        let notifier = session.failure_notifier().unwrap();
        if ctx.rank() >= 2 {
            // Surviving client: nothing else to do.
            let _ = notifier.next_timeout(Duration::from_secs(10));
            session.finalize().unwrap();
            return 0;
        }
        // Server-internal session & communicator, isolated from clients.
        let world = session.group_from_pset("mpi://world").unwrap();
        let servers_only = world.incl(&[0, 1]).unwrap();
        let internal = Comm::create_from_group(&servers_only, "server-internal").unwrap();
        // Wait for the client failure...
        let victim = notifier.next_timeout(Duration::from_secs(10)).expect("failure");
        assert_eq!(victim.rank(), 3);
        // ...and keep serving: the internal communicator still works.
        let sum = coll::allreduce_t(&internal, ReduceOp::Sum, &[21u32]).unwrap()[0];
        internal.free().unwrap();
        session.finalize().unwrap();
        sum
    });
    std::thread::sleep(Duration::from_millis(500));
    handle.kill_rank(3);
    let out = handle.join().unwrap();
    assert_eq!(out[0], 42);
    assert_eq!(out[1], 42);
}

#[test]
fn group_member_failure_event_carries_group_name() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let handle = launcher.spawn(JobSpec::new(2), |ctx| {
        if ctx.rank() == 1 {
            // Join the PMIx group, then die.
            let members: Vec<pmix::ProcId> =
                (0..2).map(|r| pmix::ProcId::new(ctx.proc().nspace(), r)).collect();
            let _g = ctx
                .pmix()
                .group_construct("watched", &members, &pmix::GroupDirectives::for_mpi())
                .unwrap();
            std::thread::sleep(Duration::from_secs(5));
            return None;
        }
        let events = ctx
            .pmix()
            .register_events(Some(vec![pmix::EventCode::GroupMemberFailed]));
        let members: Vec<pmix::ProcId> =
            (0..2).map(|r| pmix::ProcId::new(ctx.proc().nspace(), r)).collect();
        let _g = ctx
            .pmix()
            .group_construct("watched", &members, &pmix::GroupDirectives::for_mpi())
            .unwrap();
        let ev = events.next_timeout(Duration::from_secs(10)).expect("member-failed event");
        Some((
            ev.source.clone().unwrap().rank(),
            ev.get("group").unwrap().as_str().unwrap().to_owned(),
        ))
    });
    std::thread::sleep(Duration::from_millis(500));
    handle.kill_rank(1);
    let out = handle.join().unwrap();
    assert_eq!(out[0], Some((1, "watched".to_owned())));
}

#[test]
fn sender_errors_when_receiver_dies_mid_handshake() {
    // exCID handshake torn by failure: rank 0's first send leaves with the
    // extended header, but rank 1 never runs its progress engine (so the
    // CidAck is never produced) and is then killed. The sender must surface
    // `ProcFailed` on its next send in bounded time — not spin in extended
    // mode retrying a handshake that can never complete.
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let handle = launcher.spawn(JobSpec::new(2), |ctx| {
        let session = new_session(&ctx);
        let g = session.group_from_pset("mpi://world").unwrap();
        let comm = Comm::create_from_group(&g, "torn-handshake").unwrap();
        if ctx.rank() == 1 {
            // Participates in comm creation, then goes silent: never posts
            // a receive, never progresses, never acks — and dies.
            std::thread::sleep(Duration::from_secs(5));
            return None;
        }
        let notifier = session.failure_notifier().unwrap();
        // Initiate the handshake. Buffered-eager semantics: the send itself
        // completes locally even though the ACK will never arrive.
        comm.send(1, 1, b"ext-opener").unwrap();
        // Wait until the runtime has observed rank 1's death.
        let victim = notifier.next_timeout(Duration::from_secs(10)).expect("failure event");
        assert_eq!(victim.rank(), 1);
        // The peer is gone: the next send must fail fast with ProcFailed.
        let err = comm.send(1, 2, b"after-death").unwrap_err();
        let class = err.class;
        // The communicator teardown cannot be collective anymore; drop it.
        session.finalize().unwrap();
        Some(class)
    });
    std::thread::sleep(Duration::from_millis(500));
    handle.kill_rank(1);
    let out = handle.join().unwrap();
    assert_eq!(out[0], Some(mpi_sessions::ErrClass::ProcFailed));

    // The obs trail confirms the handshake never completed anywhere: the
    // opener left extended, no ACK was ever sent, no transition recorded.
    let obs = launcher.universe().fabric().obs();
    // Two extended attempts: the opener, plus the post-death send that the
    // fabric rejected (counted before the rejection).
    assert_eq!(obs.sum_counters("pml", "ext_sent"), 2, "both sends left in extended mode");
    assert_eq!(obs.sum_counters("pml", "acks_sent"), 0, "dead receiver never acked");
    assert_eq!(obs.sum_counters("pml", "handshakes"), 0, "handshake never completed");
    assert!(obs.events_named("pml.handshake").is_empty());
}

#[test]
fn surviving_group_shrinks_only_after_failure() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 3));
    let handle = launcher.spawn(JobSpec::new(3), |ctx| {
        if ctx.rank() == 2 {
            std::thread::sleep(Duration::from_secs(3));
            return (0, 0);
        }
        let session = new_session(&ctx);
        let before = session.surviving_group("mpi://world").unwrap().size();
        let notifier = session.failure_notifier().unwrap();
        let _ = notifier.next_timeout(Duration::from_secs(10)).expect("event");
        let after = session.surviving_group("mpi://world").unwrap().size();
        session.finalize().unwrap();
        (before, after)
    });
    std::thread::sleep(Duration::from_millis(400));
    handle.kill_rank(2);
    let out = handle.join().unwrap();
    assert_eq!(out[0], (3, 2));
    assert_eq!(out[1], (3, 2));
}
