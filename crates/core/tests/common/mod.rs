//! Shared harness: launch an MPI job on a tiny zero-cost testbed and run a
//! closure per rank.

use prrte::{JobSpec, Launcher, ProcCtx};
use simnet::SimTestbed;

/// Run `np` simulated MPI processes over `nodes`×`slots` and collect
/// per-rank results (panics propagate as test failures).
///
/// Not every test file uses both helpers; the module is shared.
#[allow(dead_code)]
pub fn run<T, F>(nodes: u32, slots: u32, np: u32, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(ProcCtx) -> T + Send + Sync + 'static,
{
    let launcher = Launcher::new(SimTestbed::tiny(nodes, slots));
    launcher
        .spawn(JobSpec::new(np), f)
        .join()
        .expect("no rank may panic")
}

/// Same, with a customized job spec.
#[allow(dead_code)]
pub fn run_spec<T, F>(nodes: u32, slots: u32, spec: JobSpec, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(ProcCtx) -> T + Send + Sync + 'static,
{
    let launcher = Launcher::new(SimTestbed::tiny(nodes, slots));
    launcher.spawn(spec, f).join().expect("no rank may panic")
}
