//! The fault-aware recovery surface: `watch_faults` (exactly-once replay),
//! the opt-in queryable faults pset (`Session::track_faults`), the typed
//! `Comm::shrink` / `Comm::repair_via_pset` primitives, and the elastic
//! rebuild loop's re-entry when a second fault races a rebuild.
//!
//! Two of these are fails-pre-fix regressions:
//! * `dead_remote_member_fails_group_fanin_typed` — `coll_begin` used to
//!   scan only the server's *local* participants for deaths, so a dead
//!   member homed alone on a remote node stalled every other participant
//!   forever (the remote server gets no local arrival to detect against);
//! * `cascading_rebuild_reenters_to_newer_epoch` — `ElasticComm` used to
//!   surface a terminal error when the pinned-epoch membership contained a
//!   member that died after the pin, instead of consuming the death's own
//!   membership event and rebuilding at the newer epoch.

use mpi_sessions::session::PSET_WORLD;
use mpi_sessions::{
    coll, Comm, ElasticComm, ErrClass, ErrHandler, Info, Rebuild, ReduceOp, Session, ThreadLevel,
};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;
use std::time::{Duration, Instant};

fn new_session(ctx: &prrte::ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

#[test]
fn watch_faults_replays_to_late_subscriber_exactly_once() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 3));
    let handle = launcher.spawn(JobSpec::new(3), |ctx| {
        if ctx.rank() == 2 {
            std::thread::sleep(Duration::from_secs(5));
            return;
        }
        let session = new_session(&ctx);
        // Early subscriber: sees the death live.
        let mut early = session.watch_faults().unwrap();
        let v = early.next_timeout(Duration::from_secs(10)).expect("live fault");
        assert_eq!(v.rank(), 2);
        assert!(early.try_next().is_none(), "no duplicate on the live path");
        // Late subscriber, attached well after the death: the fabric's
        // dead set is replayed on attach, exactly once.
        let mut late = session.watch_faults().unwrap();
        let r = late.next_timeout(Duration::from_secs(5)).expect("replayed fault");
        assert_eq!(r.rank(), 2);
        assert!(late.try_next().is_none(), "replay is exactly-once");
        session.finalize().unwrap();
    });
    std::thread::sleep(Duration::from_millis(300));
    handle.kill_rank(2);
    handle.join().unwrap();
}

#[test]
fn dead_remote_member_fails_group_fanin_typed() {
    // Fails-pre-fix regression: rank 3 is the *sole* group member homed on
    // node 1 (tiny(2,2) puts ranks 0,1 on node 0 and 2,3 on node 1, and
    // rank 2 stays out of the group). Node 1's server therefore never gets
    // a local arrival for the construct, so the old local-only dead scan
    // could not fire anywhere and ranks 0/1 stalled until the timeout.
    // With the full-membership scan, each server reaches the verdict at
    // its own first arrival and the construct fails typed, fast.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let handle = launcher.spawn(JobSpec::new(4), |ctx| {
        if ctx.rank() == 3 {
            std::thread::sleep(Duration::from_secs(5));
            return None;
        }
        let session = new_session(&ctx);
        let mut faults = session.watch_faults().unwrap();
        let victim = faults.next_timeout(Duration::from_secs(10)).expect("fault");
        assert_eq!(victim.rank(), 3);
        if ctx.rank() == 2 {
            // Not a member of the doomed group; nothing more to do.
            session.finalize().unwrap();
            return None;
        }
        let world = session.group_from_pset(PSET_WORLD).unwrap();
        let doomed = world.incl(&[0, 1, 3]).unwrap();
        let mut req = Comm::icomm_create_from_group(&doomed, "dead-remote").unwrap();
        let err = req.wait_timeout(Duration::from_secs(5)).unwrap_err();
        session.finalize().unwrap();
        Some(err.class)
    });
    std::thread::sleep(Duration::from_millis(400));
    handle.kill_rank(3);
    let out = handle.join().unwrap();
    assert_eq!(out[0], Some(ErrClass::ProcFailed), "typed fast failure, not a stall");
    assert_eq!(out[1], Some(ErrClass::ProcFailed), "typed fast failure, not a stall");
}

#[test]
fn faults_pset_shrinks_and_supports_shrink_and_repair() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let handle = launcher.spawn(JobSpec::new(4), |ctx| {
        let session = new_session(&ctx);
        let pset = session.track_faults().unwrap();
        assert!(pset.starts_with(pmix::SURVIVORS_PSET_PREFIX));
        let process = mpi_sessions::instance::MpiProcess::obtain(&ctx);
        let registry = process.universe().registry();
        let (epoch0, members0) = registry.pset_members_versioned(&pset).unwrap();
        assert_eq!(members0.len(), 4, "all four procs live at launch");
        let world = session.group_from_pset(PSET_WORLD).unwrap();
        let comm = Comm::create_from_group(&world, "pre-fault").unwrap();
        let warm = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
        assert_eq!(warm, 4);
        if ctx.rank() == 3 {
            std::thread::sleep(Duration::from_secs(5));
            return 0u32;
        }
        let mut faults = session.watch_faults().unwrap();
        let victim = faults.next_timeout(Duration::from_secs(10)).expect("fault");
        assert_eq!(victim.rank(), 3);
        // The failure bridge prunes the faults pset just after the death
        // lands; poll for the settled membership.
        let deadline = Instant::now() + Duration::from_secs(10);
        let epoch = loop {
            let (e, m) = registry.pset_members_versioned(&pset).unwrap();
            if m.len() == 3 {
                break e;
            }
            assert!(Instant::now() < deadline, "faults pset never shrank");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(epoch > epoch0, "the shrink bumped the pset epoch");
        // A stale pin fails typed (the world moved on) without any fan-in.
        let stale = comm.repair_via_pset(&session, &pset, epoch0).unwrap_err();
        assert_eq!(stale.class, ErrClass::Stale);
        // The current pin repairs: a collective over the three survivors.
        let repaired = comm.repair_via_pset(&session, &pset, epoch).unwrap();
        assert_eq!(repaired.size(), 3);
        let sum = coll::allreduce_t(&repaired, ReduceOp::Sum, &[1u32]).unwrap()[0];
        assert_eq!(sum, 3);
        // shrink() reaches the same membership straight from the fabric.
        let shrunk = repaired.shrink("post-fault").unwrap();
        assert_eq!(shrunk.size(), 3);
        let sum2 = coll::allreduce_t(&shrunk, ReduceOp::Sum, &[2u32]).unwrap()[0];
        assert_eq!(sum2, 6);
        shrunk.free().unwrap();
        repaired.free().unwrap();
        // `comm` includes the dead rank: its teardown cannot be collective
        // anymore, so it is dropped, not freed.
        session.finalize().unwrap();
        sum + sum2
    });
    std::thread::sleep(Duration::from_millis(500));
    handle.kill_rank(3);
    let out = handle.join().unwrap();
    for r in &out[..3] {
        assert_eq!(*r, 9);
    }
}

#[test]
fn cascading_rebuild_reenters_to_newer_epoch() {
    // Fails-pre-fix regression: both kills land before the survivors run
    // their rebuild, so the first queued membership event (minus rank 3
    // only) still names the already-dead rank 2. The rebuild at that
    // pinned epoch must fail typed and re-enter the event loop — landing
    // on the next epoch's membership — rather than stall or surface a
    // terminal error.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let spec = JobSpec::new(4).with_pset("app://crew", vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("cascade", spec, |ctx| {
        let session = new_session(&ctx);
        let mut ec =
            ElasticComm::establish(&session, "app://crew", Duration::from_secs(10)).unwrap();
        let warm = coll::allreduce_t(ec.comm().unwrap(), ReduceOp::Sum, &[1u32]).unwrap()[0];
        assert_eq!(warm, 4);
        if ctx.rank() >= 2 {
            std::thread::sleep(Duration::from_secs(5));
            return 0u32;
        }
        // Hold the rebuild until BOTH deaths are known, so the cascade is
        // guaranteed: the epoch pinned by the first event includes a
        // member that is already dead.
        let mut faults = session.watch_faults().unwrap();
        let mut dead = vec![
            faults.next_timeout(Duration::from_secs(10)).expect("first fault").rank(),
            faults.next_timeout(Duration::from_secs(10)).expect("second fault").rank(),
        ];
        dead.sort_unstable();
        assert_eq!(dead, vec![2, 3]);
        match ec.next_rebuild(Duration::from_secs(20)).unwrap() {
            Rebuild::Rebuilt { .. } => {}
            other => panic!("expected a rebuild over the survivors, got {other:?}"),
        }
        let comm = ec.comm().expect("rebuilt communicator");
        assert_eq!(comm.size(), 2);
        let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
        drop(ec);
        session.finalize().unwrap();
        sum
    });
    std::thread::sleep(Duration::from_millis(600));
    handle.kill_rank(3);
    handle.kill_rank(2);
    let out = handle.join().unwrap();
    assert_eq!(out[0], 2);
    assert_eq!(out[1], 2);
    // The typed re-entry actually happened (this is what turns the old
    // terminal error into a survived cascade).
    let obs = launcher.universe().fabric().obs();
    assert!(
        obs.sum_counters("session", "rebuild_reentered") >= 1,
        "at least one survivor re-entered the rebuild loop"
    );
}

#[test]
fn graceful_retire_prunes_faults_pset_without_fault_events() {
    // Retirement is planned shrink, not failure: the faults pset follows
    // the drain (the launcher prunes it explicitly — no failure event
    // fires on this path), and fault watchers stay silent.
    let launcher = Launcher::new(SimTestbed::tiny(1, 3));
    let spec = JobSpec::new(3).with_pset("app://ring", vec![0, 1, 2]);
    let handle = launcher.spawn_named("retirejob", spec, |ctx| {
        let session = new_session(&ctx);
        let pset = session.track_faults().unwrap();
        if ctx.rank() == 2 {
            // The retiree: drain on the app pset's membership event.
            let w = session.watch_psets().unwrap();
            loop {
                let u = w.next_timeout(Duration::from_secs(10)).expect("pset event");
                if u.pset == "app://ring" && !u.members.contains(ctx.proc()) {
                    break;
                }
            }
            session.finalize().unwrap();
            return pset;
        }
        let mut faults = session.watch_faults().unwrap();
        let process = mpi_sessions::instance::MpiProcess::obtain(&ctx);
        let registry = process.universe().registry();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, m) = registry.pset_members_versioned(&pset).unwrap();
            if m.len() == 2 {
                break;
            }
            assert!(Instant::now() < deadline, "faults pset never followed the retire");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(faults.try_next().is_none(), "a graceful retire is not a fault");
        session.finalize().unwrap();
        pset
    });
    let ctl = handle.ctl();
    let retired = ctl.retire_ranks(&[2], Some("app://ring")).unwrap();
    assert_eq!(retired.len(), 1);
    handle.join().unwrap();
}
