//! Lazy (fence-free) session initialization, end to end (DESIGN.md §14):
//!
//! * `init_mode=lazy` skips every collective setup step — no fence, no
//!   PMIx group construction, no PGCID round trip — and still yields a
//!   fully functional communicator;
//! * peer endpoints resolve **on demand**: actively (first send triggers a
//!   KVS business-card fetch) or passively (the receiver learns the
//!   sender's endpoint from the first message's extended header);
//! * an eager and a lazy run of the same program produce identical
//!   results ("trace equivalence" at the application boundary);
//! * a retired rank's business card is purged from every server shard, so
//!   a later lazy resolve fails with a typed error instead of handing out
//!   a stale endpoint.

use mpi_sessions::info::keys;
use mpi_sessions::session::PSET_WORLD;
use mpi_sessions::{coll, CidOrigin, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use simnet::SimTestbed;
use std::time::Duration;

fn lazy_info() -> Info {
    let info = Info::new();
    info.set(keys::INIT_MODE, "lazy");
    info
}

fn lazy_session(ctx: &ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &lazy_info()).unwrap()
}

/// The workload both modes run for the equivalence test: a ring exchange
/// (every rank sends to its right neighbor and receives from its left),
/// then an allreduce. Returns (received payload, allreduce sum).
fn ring_then_allreduce(ctx: &ProcCtx, comm: &Comm) -> (Vec<u8>, u64) {
    let np = comm.size();
    let right = (ctx.rank() + 1) % np;
    let left = (ctx.rank() + np - 1) % np;
    let payload = vec![ctx.rank() as u8; 8];
    let (got, _) = comm.sendrecv(right, 5, &payload, left as i32, 5).unwrap();
    let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[ctx.rank() as u64]).unwrap()[0];
    (got, sum)
}

#[test]
fn lazy_init_end_to_end_without_group_construct() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let out = launcher
        .spawn(JobSpec::new(4), |ctx| {
            let session = lazy_session(&ctx);
            assert!(session.is_lazy());
            let group = session.group_from_pset(PSET_WORLD).unwrap();
            assert!(group.is_lazy(), "groups inherit the session's mode");
            let comm = Comm::create_from_group(&group, "lazy-e2e").unwrap();
            assert_eq!(comm.cid_origin(), CidOrigin::Lazy);
            let excid = comm.excid().unwrap();
            assert_ne!(excid.pgcid & (1 << 63), 0, "hashed PGCIDs set bit 63");
            let res = (ring_then_allreduce(&ctx, &comm), excid);
            comm.free().unwrap();
            session.finalize().unwrap();
            (res, ctx.proc().to_string())
        })
        .join()
        .expect("lazy job");

    for (((got, sum), excid), _) in &out {
        assert_eq!(*sum, 6);
        assert_eq!(got.len(), 8);
        // Every rank hashed the identical exCID with zero traffic.
        assert_eq!(*excid, out[0].0 .1);
    }
    let obs = launcher.universe().fabric().obs();
    // The whole point: no PMIx group collective ran, in any stage.
    assert_eq!(obs.sum_counters("pmix", "group_construct_completed"), 0);
    assert_eq!(obs.sum_counters("pmix", "stage_fanin"), 0);
    assert_eq!(obs.sum_counters("pmix", "stage_fanout"), 0);
    assert_eq!(obs.sum_counters("pmix", "fence_completed"), 0);
    // Somebody resolved a peer through the KVS...
    assert!(obs.sum_counters("pmix", "lazy_gets") > 0, "active resolution happened");
    // ...and every begun resolution reached a terminal state.
    let events = obs.events_named("pml.lazy_resolve");
    let begins = events
        .iter()
        .filter(|e| e.attr("phase").and_then(|v| v.as_str()) == Some("begin"))
        .count();
    let ends = events
        .iter()
        .filter(|e| e.attr("phase").and_then(|v| v.as_str()) == Some("end"))
        .count();
    assert!(begins > 0, "at least one lazy resolve began");
    assert_eq!(begins, ends, "every lazy resolve must terminate");
}

#[test]
fn lazy_and_eager_runs_are_equivalent_at_the_app_boundary() {
    // The same program, once per mode, each in its own universe so the
    // observability registries don't mix.
    let run_mode = |lazy: bool| {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let out = launcher
            .spawn(JobSpec::new(4), move |ctx| {
                let info = if lazy { lazy_info() } else { Info::null() };
                let session =
                    Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
                let group = session.group_from_pset(PSET_WORLD).unwrap();
                let comm = Comm::create_from_group(&group, "equiv").unwrap();
                let res = ring_then_allreduce(&ctx, &comm);
                comm.free().unwrap();
                session.finalize().unwrap();
                res
            })
            .join()
            .expect("equiv job");
        let obs = launcher.universe().fabric().obs();
        (out, obs.sum_counters("pmix", "stage_fanout"))
    };
    let (eager_out, eager_fanout) = run_mode(false);
    let (lazy_out, lazy_fanout) = run_mode(true);
    // Identical application-visible behavior...
    assert_eq!(eager_out, lazy_out);
    // ...with the collective machinery only on the eager side.
    assert!(eager_fanout > 0, "eager comm creation fans out");
    assert_eq!(lazy_fanout, 0, "lazy comm creation never fans out");
}

#[test]
fn first_receive_resolves_the_sender_passively() {
    // Rank 0 resolves rank 1 actively (KVS fetch). Rank 1 never fetches:
    // its route to rank 0 fills in from the first message's extended
    // header, so the reply rides a fully resolved route.
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let procs = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let session = lazy_session(&ctx);
            let group = session.group_from_pset(PSET_WORLD).unwrap();
            let comm = Comm::create_from_group(&group, "passive").unwrap();
            if ctx.rank() == 0 {
                comm.send(1, 3, b"ping").unwrap();
                let (reply, _) = comm.recv(1, 4).unwrap();
                assert_eq!(reply, b"pong");
            } else {
                let (m, _) = comm.recv(0, 3).unwrap();
                assert_eq!(m, b"ping");
                comm.send(0, 4, b"pong").unwrap();
            }
            comm.free().unwrap();
            session.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("passive job");

    let obs = launcher.universe().fabric().obs();
    assert!(
        obs.counter_value(&procs[0], "pmix", "lazy_gets") >= 1,
        "the initiator resolves actively"
    );
    assert_eq!(
        obs.counter_value(&procs[1], "pmix", "lazy_gets"),
        0,
        "the receiver must not need a KVS fetch"
    );
    assert!(
        obs.sum_counters("pml", "lazy_passive_resolves") >= 1,
        "the receiver learned the sender's endpoint from the ext header"
    );
}

#[test]
fn universe_default_makes_sessions_lazy_without_info() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher.universe().set_lazy_init_default(true);
    let out = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let session = Session::init(
                &ctx,
                ThreadLevel::Single,
                ErrHandler::Return,
                &Info::null(),
            )
            .unwrap();
            let lazy = session.is_lazy();
            // An explicit info key still overrides the universe default.
            let eager = Session::init(
                &ctx,
                ThreadLevel::Single,
                ErrHandler::Return,
                &{
                    let i = Info::new();
                    i.set(keys::INIT_MODE, "eager");
                    i
                },
            )
            .unwrap();
            let overridden = eager.is_lazy();
            eager.finalize().unwrap();
            session.finalize().unwrap();
            (lazy, overridden)
        })
        .join()
        .expect("default job");
    assert_eq!(out, vec![(true, false), (true, false)]);
}

#[test]
fn repeated_sends_hit_the_resolver_cache() {
    // Two communicators over the same membership: the second comm's first
    // send must not pay a second KVS round trip — the per-process peer
    // cache already holds the endpoint. The second comm is created *after*
    // the first resolution completed (a comm alive during the resolution
    // gets its route filled directly and never consults the cache at all).
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let session = lazy_session(&ctx);
            let group = session.group_from_pset(PSET_WORLD).unwrap();
            let c1 = Comm::create_from_group(&group, "cache-a").unwrap();
            if ctx.rank() == 0 {
                c1.send(1, 1, b"x").unwrap();
            } else {
                c1.recv(0, 1).unwrap();
            }
            // Lazy creation is purely local, so this materializes a fresh
            // unresolved route table on each rank.
            let c2 = Comm::create_from_group(&group, "cache-b").unwrap();
            if ctx.rank() == 0 {
                c2.send(1, 1, b"y").unwrap();
            } else {
                c2.recv(0, 1).unwrap();
            }
            // Drain in-flight ACK handshakes before teardown.
            coll::barrier(&c2).unwrap();
            c2.free().unwrap();
            c1.free().unwrap();
            session.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("cache job");

    let obs = launcher.universe().fabric().obs();
    assert_eq!(
        obs.sum_counters("pmix", "lazy_gets"),
        1,
        "exactly one KVS fetch: rank 0 resolving rank 1, once"
    );
    assert!(obs.sum_counters("pmix", "get_cache_hits") >= 1, "second comm hits the cache");
}

#[test]
fn retired_rank_kvs_card_is_purged_and_resolution_fails_typed() {
    // Regression test for the retire-purge fix: without
    // `PmixUniverse::purge_retired`, a retired rank's committed business
    // card lingers in the server KVS forever, and a lazy resolve of the
    // departed peer happily returns a dangling endpoint. After the fix the
    // card is gone from every shard and the resolver reports a typed
    // process-failure error.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let spec = JobSpec::new(4).with_pset("app://ring", vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("purgejob", spec, |ctx| {
        let session = lazy_session(&ctx);
        let group = session.group_from_pset(PSET_WORLD).unwrap();
        let comm = Comm::create_from_group(&group, "purge").unwrap();
        // Warm every route so all four business cards are committed and
        // fetched at least once; the collective also keeps everyone alive
        // until rank 3's card has certainly been published.
        let _ = ring_then_allreduce(&ctx, &comm);
        comm.free().unwrap();
        session.finalize().unwrap();
        ctx.proc().clone()
    });
    let ctl = handle.ctl();
    // Rank 3 leaves gracefully: its body returns and retire_ranks joins it.
    let retired = ctl.retire_ranks(&[3], Some("app://ring")).unwrap();
    assert_eq!(retired.len(), 1);
    handle.join().unwrap();

    // The committed business card is gone from every server shard.
    for server in launcher.universe().servers() {
        assert!(
            server.local_committed(&retired[0]).is_none(),
            "retired rank's KVS entries must be purged"
        );
    }
}

#[test]
fn killed_peer_card_is_evicted_from_resolver_cache() {
    // Regression test for the cache-invalidation fix: the per-process
    // resolver cache used to keep serving a killed peer's business card,
    // because `registry.locate` still succeeds for dead (never
    // deregistered) procs — so a subscriber that learned of the death via
    // `watch_faults` could turn around and "resolve" the corpse. After the
    // fix, `PeerResolver::lookup` cross-checks the dead set and evicts the
    // entry, so the cache converges to a miss once the death has landed.
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let handle = launcher.spawn(JobSpec::new(2), |ctx| {
        let session = lazy_session(&ctx);
        let group = session.group_from_pset(PSET_WORLD).unwrap();
        let comm = Comm::create_from_group(&group, "evict").unwrap();
        // Prime the cache: rank 0 lazily resolves rank 1's card.
        if ctx.rank() == 0 {
            comm.send(1, 7, b"ping").unwrap();
            comm.recv(1, 8).unwrap();
        } else {
            comm.recv(0, 7).unwrap();
            comm.send(0, 8, b"pong").unwrap();
            // Victim: hold the endpoint open until the driver kills it.
            std::thread::sleep(Duration::from_secs(5));
            return None;
        }
        let peer = pmix::ProcId::new(ctx.proc().nspace(), 1);
        let process = mpi_sessions::instance::MpiProcess::obtain(&ctx);
        let resolver = process.pml().resolver().expect("lazy session has a resolver");
        assert!(resolver.lookup(&peer).is_some(), "cache is primed before the kill");
        let mut faults = session.watch_faults().unwrap();
        let victim = faults.next_timeout(Duration::from_secs(10)).expect("fault");
        assert_eq!(victim.rank(), 1);
        // The fault has landed: the cached card must converge to a miss
        // (the bridge marks server dead sets asynchronously, so poll).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while resolver.lookup(&peer).is_some() {
            assert!(
                std::time::Instant::now() < deadline,
                "resolver cache still serves the dead peer's card"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // And a fresh send to the corpse fails typed, not with a dangling
        // route from the stale card.
        let err = comm.send(1, 9, b"to-the-dead").unwrap_err();
        assert!(
            matches!(
                err.class,
                mpi_sessions::ErrClass::ProcFailed | mpi_sessions::ErrClass::ProcTerminated
            ),
            "send to a dead peer must fail typed, got {err}"
        );
        session.finalize().unwrap();
        Some(err.class)
    });
    std::thread::sleep(Duration::from_millis(400));
    handle.kill_rank(1);
    let out = handle.join().unwrap();
    assert!(out[0].is_some());
}
