//! Integration tests for the Sessions API: the Figure-1 sequence, pset
//! queries, repeatable initialization, pre-init objects, and coexistence
//! with the World Process Model.

mod common;

use common::{run, run_spec};
use mpi_sessions::coll;
use mpi_sessions::info::keys;
use mpi_sessions::session::{PSET_SELF, PSET_SHARED, PSET_WORLD};
use mpi_sessions::{Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use prrte::JobSpec;

fn new_session(ctx: &prrte::ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

#[test]
fn figure1_sequence_world_pset_to_comm() {
    // The exact sequence of the paper's Figure 1: session -> query psets ->
    // group from pset -> communicator from group -> use it.
    let sums = run(2, 2, 4, |ctx| {
        let session = new_session(&ctx);
        let names = session.pset_names().unwrap();
        assert!(names.contains(&PSET_WORLD.to_string()));
        let group = session.group_from_pset(PSET_WORLD).unwrap();
        assert_eq!(group.size(), 4);
        let comm = Comm::create_from_group(&group, "fig1").unwrap();
        assert_eq!(comm.size(), 4);
        assert_eq!(comm.rank(), ctx.rank());
        let total = coll::allreduce_t(&comm, ReduceOp::Sum, &[ctx.rank() as i64]).unwrap();
        comm.free().unwrap();
        session.finalize().unwrap();
        total[0]
    });
    assert_eq!(sums, vec![6, 6, 6, 6]);
}

#[test]
fn builtin_psets_resolve_correctly() {
    let out = run(2, 2, 4, |ctx| {
        let session = new_session(&ctx);
        let world = session.group_from_pset(PSET_WORLD).unwrap();
        let selfg = session.group_from_pset(PSET_SELF).unwrap();
        let shared = session.group_from_pset(PSET_SHARED).unwrap();
        let res = (world.size(), selfg.size(), shared.size());
        session.finalize().unwrap();
        res
    });
    for (w, s, sh) in out {
        assert_eq!(w, 4);
        assert_eq!(s, 1);
        assert_eq!(sh, 2, "two slots per node => two shared-node peers");
    }
}

#[test]
fn custom_pset_from_launcher_becomes_communicator() {
    // prun --pset analog: only the pset members create the communicator.
    let spec = JobSpec::new(4).with_pset("app://evens", vec![0, 2]);
    let out = run_spec(2, 2, spec, |ctx| {
        let session = new_session(&ctx);
        assert!(session.pset_names().unwrap().contains(&"app://evens".to_string()));
        let info = session.pset_info("app://evens").unwrap();
        assert_eq!(info.get("mpi_size").as_deref(), Some("2"));
        let res = if ctx.rank() % 2 == 0 {
            let group = session.group_from_pset("app://evens").unwrap();
            let comm = Comm::create_from_group(&group, "evens").unwrap();
            let r = coll::allreduce_t(&comm, ReduceOp::Sum, &[ctx.rank() as i64]).unwrap()[0];
            comm.free().unwrap();
            r
        } else {
            -1
        };
        session.finalize().unwrap();
        res
    });
    assert_eq!(out, vec![2, -1, 2, -1]);
}

#[test]
fn session_init_is_repeatable() {
    // MPI_Session_init can be called many times, sequentially and after
    // full finalization — the core limitation of MPI_Init it removes.
    let cycles = run(1, 2, 2, |ctx| {
        // Hold the process handle so the cycle counter survives the gaps
        // between sessions (an application would hold *some* MPI object
        // or re-obtain it; the library state itself is torn down anyway).
        let p = mpi_sessions::instance::MpiProcess::obtain(&ctx);
        for i in 0..5 {
            let session = new_session(&ctx);
            assert_eq!(p.open_instances(), 1);
            let group = session.group_from_pset(PSET_WORLD).unwrap();
            let comm = Comm::create_from_group(&group, &format!("cycle{i}")).unwrap();
            coll::barrier(&comm).unwrap();
            comm.free().unwrap();
            session.finalize().unwrap();
            assert_eq!(p.open_instances(), 0);
        }
        p.full_cycles()
    });
    // Every init/finalize pair fully tears the library down (one session
    // at a time), so 5 cycles are observed.
    assert_eq!(cycles, vec![5, 5]);
}

#[test]
fn concurrent_sessions_are_isolated() {
    let out = run(1, 2, 2, |ctx| {
        let s1 = new_session(&ctx);
        let s2 = new_session(&ctx);
        let g1 = s1.group_from_pset(PSET_WORLD).unwrap();
        let g2 = s2.group_from_pset(PSET_WORLD).unwrap();
        let c1 = Comm::create_from_group(&g1, "s1").unwrap();
        let c2 = Comm::create_from_group(&g2, "s2").unwrap();
        // Different sessions produce distinct communicators (distinct
        // PGCIDs) that work independently.
        assert_ne!(c1.excid(), c2.excid());
        let a = coll::allreduce_t(&c1, ReduceOp::Max, &[ctx.rank()]).unwrap()[0];
        let b = coll::allreduce_t(&c2, ReduceOp::Min, &[ctx.rank()]).unwrap()[0];
        c1.free().unwrap();
        c2.free().unwrap();
        // Finalizing one session must not break the other... both already
        // freed their comms here; finalize in either order.
        s2.finalize().unwrap();
        s1.finalize().unwrap();
        (a, b)
    });
    assert_eq!(out, vec![(1, 0), (1, 0)]);
}

#[test]
fn session_thread_level_from_info_overrides_argument() {
    let out = run(1, 1, 1, |ctx| {
        let info = Info::new();
        info.set(keys::THREAD_LEVEL, "MPI_THREAD_MULTIPLE");
        let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
        let lvl = s.thread_level();
        s.finalize().unwrap();
        lvl
    });
    assert_eq!(out[0], ThreadLevel::Multiple);
}

#[test]
fn finalized_session_rejects_use() {
    run(1, 1, 1, |ctx| {
        let s = new_session(&ctx);
        let s2 = s.clone();
        s.finalize().unwrap();
        assert!(s2.group_from_pset(PSET_WORLD).is_err());
        assert!(s2.pset_names().is_err());
        assert!(s2.clone().finalize().is_err());
    });
}

#[test]
fn unknown_pset_is_an_error() {
    run(1, 1, 1, |ctx| {
        let s = new_session(&ctx);
        let err = s.group_from_pset("mpi://nonsense").unwrap_err();
        assert_eq!(err.class, mpi_sessions::ErrClass::Arg);
        s.finalize().unwrap();
    });
}

#[test]
fn preinit_objects_info_errhandler_attrs() {
    // Paper §III-B5: info objects, error handlers and session attribute
    // keyvals must be fully usable before any initialization call.
    let info = Info::new();
    info.set("mpi_eager_limit", "4096");
    let handler = ErrHandler::custom(|_e| {});
    let kv = mpi_sessions::attr::Keyval::create();

    let out = run(1, 2, 2, move |ctx| {
        let s = Session::init(&ctx, ThreadLevel::Single, handler.clone(), &info).unwrap();
        s.attrs().set(kv, 77).unwrap();
        let got = s.attrs().get(kv).unwrap();
        // The eager-limit info key must have reached the PML.
        let lim = mpi_sessions::instance::MpiProcess::obtain(&ctx).pml().eager_limit();
        s.finalize().unwrap();
        (got, lim)
    });
    for (got, lim) in out {
        assert_eq!(got, Some(77));
        assert_eq!(lim, 4096);
    }
    kv.free();
}

#[test]
fn wpm_and_sessions_coexist() {
    // Paper §III-B5: the restructured init lets the Sessions Process Model
    // run alongside the World Process Model in one execution.
    let out = run(2, 1, 2, |ctx| {
        let world = mpi_sessions::world::init(&ctx).unwrap();
        let session = new_session(&ctx);
        let group = session.group_from_pset(PSET_WORLD).unwrap();
        let sc = Comm::create_from_group(&group, "coexist").unwrap();
        // Use both communicators, interleaved.
        let via_wpm = coll::allreduce_t(world.comm(), ReduceOp::Sum, &[1i32]).unwrap()[0];
        let via_sess = coll::allreduce_t(&sc, ReduceOp::Sum, &[10i32]).unwrap()[0];
        sc.free().unwrap();
        session.finalize().unwrap();
        world.finalize().unwrap();
        (via_wpm, via_sess)
    });
    assert_eq!(out, vec![(2, 20), (2, 20)]);
}

#[test]
fn wpm_cannot_reinitialize() {
    run(1, 1, 1, |ctx| {
        let w = mpi_sessions::world::init(&ctx).unwrap();
        w.finalize().unwrap();
        let err = mpi_sessions::world::init(&ctx).unwrap_err();
        assert!(err.message.contains("cannot be re-initialized"));
        // ... but sessions still can.
        let s = new_session(&ctx);
        s.finalize().unwrap();
    });
}

#[test]
fn nth_pset_enumerates() {
    run(1, 1, 1, |ctx| {
        let s = new_session(&ctx);
        let n = s.num_psets().unwrap();
        assert!(n >= 3);
        for i in 0..n {
            assert!(!s.nth_pset(i).unwrap().is_empty());
        }
        assert!(s.nth_pset(n).is_err());
        s.finalize().unwrap();
    });
}

#[test]
fn sessions_comm_local_cids_may_differ_but_excid_agrees() {
    // The design point of §III-B3: the 16-bit local CID no longer has to
    // be consistent across processes; the exCID is.
    let out = run(1, 3, 3, |ctx| {
        let s = new_session(&ctx);
        // Skew the local table on rank 1 only: burn an extra slot first.
        let skew = if ctx.rank() == 1 {
            let g = s.group_from_pset(PSET_SELF).unwrap();
            Some(Comm::create_from_group(&g, "skew").unwrap())
        } else {
            None
        };
        let group = s.group_from_pset(PSET_WORLD).unwrap();
        let comm = Comm::create_from_group(&group, "main").unwrap();
        // Communication still works despite skewed local CIDs.
        let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
        let res = (comm.local_cid(), comm.excid().unwrap(), sum);
        comm.free().unwrap();
        if let Some(c) = skew {
            c.free().unwrap();
        }
        s.finalize().unwrap();
        res
    });
    assert_eq!(out[0].2, 3);
    // exCIDs agree everywhere...
    assert_eq!(out[0].1, out[1].1);
    assert_eq!(out[1].1, out[2].1);
    // ...while rank 1's local CID differs from the others'.
    assert_eq!(out[0].0, out[2].0);
    assert_ne!(out[0].0, out[1].0);
}
