//! Collective correctness across communicator sizes and both CID regimes.

mod common;

use common::run;
use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

fn with_sizes(sizes: &[u32], f: impl Fn(&Comm, u32, u32) + Send + Sync + Copy + 'static) {
    for &n in sizes {
        let nodes = if n >= 4 { 2 } else { 1 };
        let slots = n.div_ceil(nodes);
        run(nodes, slots, n, move |ctx| {
            let (s, c) = world_comm(&ctx, "coll");
            f(&c, ctx.rank(), n);
            c.free().unwrap();
            s.finalize().unwrap();
        });
    }
}

#[test]
fn barrier_all_sizes() {
    with_sizes(&[1, 2, 3, 4, 5, 8], |c, _, _| {
        for _ in 0..3 {
            coll::barrier(c).unwrap();
        }
    });
}

#[test]
fn bcast_all_sizes_and_roots() {
    with_sizes(&[1, 2, 3, 5, 8], |c, me, n| {
        for root in 0..n {
            let data: Vec<i64> = if me == root { vec![root as i64, 42] } else { vec![] };
            let got = coll::bcast_t(c, root, &data).unwrap();
            assert_eq!(got, vec![root as i64, 42]);
        }
    });
}

#[test]
fn reduce_sum_and_max() {
    with_sizes(&[2, 3, 4, 7], |c, me, n| {
        let out = coll::reduce_t(c, 0, ReduceOp::Sum, &[me as i64, 1]).unwrap();
        if me == 0 {
            let expect = (n as i64 - 1) * n as i64 / 2;
            assert_eq!(out.unwrap(), vec![expect, n as i64]);
        } else {
            assert!(out.is_none());
        }
        let out = coll::reduce_t(c, n - 1, ReduceOp::Max, &[me as i64]).unwrap();
        if me == n - 1 {
            assert_eq!(out.unwrap(), vec![n as i64 - 1]);
        }
    });
}

#[test]
fn allreduce_everyone_agrees() {
    with_sizes(&[1, 2, 4, 6], |c, me, n| {
        let got = coll::allreduce_t(c, ReduceOp::Sum, &[me as u64 + 1]).unwrap();
        assert_eq!(got[0], (n as u64) * (n as u64 + 1) / 2);
        let got = coll::allreduce_t(c, ReduceOp::Min, &[me as u64 + 10]).unwrap();
        assert_eq!(got[0], 10);
    });
}

#[test]
fn allgather_concatenates_in_rank_order() {
    with_sizes(&[1, 2, 4, 5], |c, me, n| {
        let got = coll::allgather_t(c, &[me * 10, me * 10 + 1]).unwrap();
        let expect: Vec<u32> = (0..n).flat_map(|r| [r * 10, r * 10 + 1]).collect();
        assert_eq!(got, expect);
    });
}

#[test]
fn gather_scatter_roundtrip() {
    with_sizes(&[2, 4], |c, me, n| {
        let gathered = coll::gather_t(c, 0, &[me as i32]).unwrap();
        let scattered = if me == 0 {
            let all = gathered.unwrap();
            assert_eq!(all, (0..n as i32).collect::<Vec<_>>());
            let doubled: Vec<i32> = all.iter().map(|x| x * 2).collect();
            coll::scatter_t(c, 0, Some(&doubled)).unwrap()
        } else {
            assert!(gathered.is_none());
            coll::scatter_t(c, 0, None).unwrap()
        };
        assert_eq!(scattered, vec![me as i32 * 2]);
    });
}

#[test]
fn alltoall_transposes() {
    with_sizes(&[2, 3, 4], |c, me, n| {
        // data[j] = me*n + j ; after alltoall, slot j holds j*n + me.
        let data: Vec<u32> = (0..n).map(|j| me * n + j).collect();
        let got = coll::alltoall_t(c, &data).unwrap();
        let expect: Vec<u32> = (0..n).map(|j| j * n + me).collect();
        assert_eq!(got, expect);
    });
}

#[test]
fn scan_inclusive_prefix() {
    with_sizes(&[1, 2, 4, 6], |c, me, _| {
        let got = coll::scan_t(c, ReduceOp::Sum, &[me as i64 + 1]).unwrap();
        let expect = ((me as i64 + 1) * (me as i64 + 2)) / 2;
        assert_eq!(got[0], expect);
    });
}

#[test]
fn ibarrier_completes_via_test_polling() {
    run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "ib");
        // Stagger entry so test() must poll a while on early ranks.
        std::thread::sleep(std::time::Duration::from_millis(20 * ctx.rank() as u64));
        let mut req = coll::ibarrier(&c).unwrap();
        let mut polls = 0u32;
        while !req.test().unwrap() {
            polls += 1;
            std::thread::sleep(std::time::Duration::from_micros(200));
            assert!(polls < 1_000_000);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn ibarrier_wait_blocks_until_everyone_enters() {
    run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "ibw");
        let req = coll::ibarrier(&c).unwrap();
        req.wait().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn collectives_work_on_consensus_comms_too() {
    // Same collectives over a WPM (consensus-CID) communicator.
    run(2, 2, 4, |ctx| {
        let world = mpi_sessions::world::init(&ctx).unwrap();
        let c = world.comm();
        let me = ctx.rank();
        let sum = coll::allreduce_t(c, ReduceOp::Sum, &[me as i64]).unwrap();
        assert_eq!(sum[0], 6);
        let got = coll::bcast_t(c, 2, &if me == 2 { vec![9u32] } else { vec![] }).unwrap();
        assert_eq!(got, vec![9]);
        coll::barrier(c).unwrap();
        world.finalize().unwrap();
    });
}

#[test]
fn back_to_back_collectives_do_not_cross_talk() {
    run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "b2b");
        for i in 0..20u64 {
            let got = coll::allreduce_t(&c, ReduceOp::Sum, &[i]).unwrap();
            assert_eq!(got[0], i * 4);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn large_payload_collectives_use_rendezvous() {
    run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "big");
        let data = vec![ctx.rank() as u64; 50_000]; // 400 KB > eager limit
        let got = coll::allreduce_t(&c, ReduceOp::Sum, &data).unwrap();
        assert!(got.iter().all(|v| *v == 3));
        c.free().unwrap();
        s.finalize().unwrap();
    });
}
