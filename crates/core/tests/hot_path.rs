//! Hot-path scaling invariants for the batched-PGCID and coalesced-refill
//! machinery, asserted from the obs trail:
//!
//! * 300 `dup_via_group` calls (the Fig. 4 sessions mode) trigger at most
//!   `dups / block` PGCID requests to the resource manager — the span
//!   count on the critical path drops from O(dups) to O(dups/block);
//! * concurrent dups that hit an exhausted derivation pool coalesce on a
//!   single refill instead of each paying a PMIx group-construct trip;
//! * a bounded handshake cache under eviction pressure re-handshakes
//!   evicted pairings without ever violating the chaos harness's
//!   handshake-uniqueness invariant: at most one completed handshake per
//!   `(process, pgcid, derivation, peer, cache generation)`.

use mpi_sessions::{Comm, ErrHandler, Info, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use simnet::SimTestbed;
use std::collections::HashSet;

fn world_comm(ctx: &ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn pgcid_block_batches_requests_across_300_group_dups() {
    const DUPS: usize = 300;
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, c) = world_comm(&ctx, "hot-dup300");
            let dups: Vec<Comm> = (0..DUPS).map(|_| c.dup_via_group().unwrap()).collect();
            // Every dup acquired a fresh PGCID of its own.
            let seen: HashSet<u64> =
                dups.iter().map(|d| d.excid().unwrap().pgcid).collect();
            assert_eq!(seen.len(), DUPS);
            for d in dups {
                d.free().unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .expect("dup job");

    let obs = launcher.universe().fabric().obs();
    // 301 group constructs (the parent comm plus 300 dups) needed 301
    // PGCIDs; with the default block of 8 only every 8th construct misses
    // the pool and sends a request.
    let requests = obs
        .spans_snapshot()
        .iter()
        .filter(|sp| sp.name == "pgcid.request")
        .count();
    let expected = (DUPS + 1).div_ceil(pmix::DEFAULT_PGCID_BLOCK as usize);
    assert_eq!(requests, expected, "one request per block");
    assert!(
        requests <= (DUPS + 1) / 4,
        "acceptance: >= 4x fewer pgcid.request spans than constructs"
    );
    // The other constructs were pool hits, and the accounting stays exact:
    // allocated ids == blocks * block size >= ids handed out.
    let hits = obs.sum_counters("pmix", "pgcid_pool_hits");
    assert_eq!(hits as usize + requests, DUPS + 1);
    assert_eq!(
        obs.sum_counters("pmix", "pgcid_allocated"),
        requests as u64 * pmix::DEFAULT_PGCID_BLOCK
    );
}

#[test]
fn concurrent_dups_coalesce_on_one_refill() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 1));
    launcher
        .spawn(JobSpec::new(1), |ctx| {
            let (s, c) = world_comm(&ctx, "hot-coalesce");
            // Exhaust the parent's derivation block: 255 serial dups.
            let serial: Vec<Comm> = (0..255).map(|_| c.dup().unwrap()).collect();
            // Four concurrent dups now race into the exhausted pool. The
            // refill lock lets exactly one of them pay the PMIx trip; the
            // rest block and derive from the refilled block.
            let concurrent: Vec<Comm> = std::thread::scope(|sc| {
                let handles: Vec<_> =
                    (0..4).map(|_| sc.spawn(|| c.dup().unwrap())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut seen: HashSet<_> = serial.iter().map(|d| d.excid().unwrap()).collect();
            seen.extend(concurrent.iter().map(|d| d.excid().unwrap()));
            assert_eq!(seen.len(), 259, "every exCID unique");
            for d in serial.into_iter().chain(concurrent) {
                d.free().unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("coalesce job");

    let obs = launcher.universe().fabric().obs();
    // Exactly two PGCID acquisitions ever: the parent's own block and ONE
    // refill shared by all four concurrent dups.
    assert_eq!(obs.sum_counters("cid", "refills"), 2, "refills did not coalesce");
    assert_eq!(obs.events_named("cid.refill").len(), 1, "one refill event");
    assert_eq!(obs.sum_counters("cid", "derivations"), 259);
}

#[test]
fn cache_eviction_churn_never_breaks_handshake_uniqueness() {
    const WAVES: usize = 6;
    let launcher = Launcher::new(SimTestbed::tiny(1, 3));
    launcher
        .spawn(JobSpec::new(3), |ctx| {
            // Cap the handshake cache at one pairing per process: with two
            // ring neighbors per rank, every wave evicts the previous
            // pairing and forces a fresh handshake under a bumped cache
            // generation.
            let process = mpi_sessions::instance::MpiProcess::obtain(&ctx);
            process.pml().set_handshake_cache_cap(1);
            let (s, c) = world_comm(&ctx, "hot-evict-base");
            let next = (ctx.rank() + 1) % 3;
            let prev = (ctx.rank() + 2) % 3;
            for wave in 0..WAVES {
                let g = s.group_from_pset("mpi://world").unwrap();
                let cw = Comm::create_from_group(&g, &format!("evict-w{wave}")).unwrap();
                // Ring traffic: both neighbors handshake on every comm.
                cw.send(next, wave as i32, &[wave as u8]).unwrap();
                let (m, _) = cw.recv(prev as i32, wave as i32).unwrap();
                assert_eq!(m, vec![wave as u8]);
                cw.send(prev, WAVES as i32 + wave as i32, b"back").unwrap();
                cw.recv(next as i32, WAVES as i32 + wave as i32).unwrap();
                cw.free().unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .expect("eviction churn job");

    let obs = launcher.universe().fabric().obs();
    assert!(obs.sum_counters("pml", "cache_evicted") > 0, "cap 1 must force evictions");
    // The chaos handshake-uniqueness key: at most one completed handshake
    // per (process, pgcid, derivation, peer, cache generation). Eviction
    // may force a re-handshake on a still-live comm, but only ever under a
    // new generation.
    let events = obs.events_named("pml.handshake");
    let attr = |e: &obs::Event, k: &str| e.attr(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let mut seen = HashSet::new();
    for e in &events {
        let key = (
            e.process.clone(),
            attr(e, "pgcid"),
            attr(e, "derivation"),
            attr(e, "peer"),
            attr(e, "cache_gen"),
        );
        assert!(seen.insert(key), "repeated handshake within one cache generation: {e:?}");
    }
    // Every completed handshake emitted exactly one event.
    assert_eq!(events.len() as u64, obs.sum_counters("pml", "handshakes"));
}
