//! Hot-path scaling invariants for the batched-PGCID and coalesced-refill
//! machinery, asserted from the obs trail:
//!
//! * 300 `dup_via_group` calls (the Fig. 4 sessions mode) trigger at most
//!   `dups / block` PGCID requests to the resource manager — the span
//!   count on the critical path drops from O(dups) to O(dups/block);
//! * concurrent dups that hit an exhausted derivation pool coalesce on a
//!   single refill instead of each paying a PMIx group-construct trip.

use mpi_sessions::{Comm, ErrHandler, Info, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use simnet::SimTestbed;
use std::collections::HashSet;

fn world_comm(ctx: &ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn pgcid_block_batches_requests_across_300_group_dups() {
    const DUPS: usize = 300;
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, c) = world_comm(&ctx, "hot-dup300");
            let dups: Vec<Comm> = (0..DUPS).map(|_| c.dup_via_group().unwrap()).collect();
            // Every dup acquired a fresh PGCID of its own.
            let seen: HashSet<u64> =
                dups.iter().map(|d| d.excid().unwrap().pgcid).collect();
            assert_eq!(seen.len(), DUPS);
            for d in dups {
                d.free().unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .expect("dup job");

    let obs = launcher.universe().fabric().obs();
    // 301 group constructs (the parent comm plus 300 dups) needed 301
    // PGCIDs; with the default block of 8 only every 8th construct misses
    // the pool and sends a request.
    let requests = obs
        .spans_snapshot()
        .iter()
        .filter(|sp| sp.name == "pgcid.request")
        .count();
    let expected = (DUPS + 1).div_ceil(pmix::DEFAULT_PGCID_BLOCK as usize);
    assert_eq!(requests, expected, "one request per block");
    assert!(
        requests <= (DUPS + 1) / 4,
        "acceptance: >= 4x fewer pgcid.request spans than constructs"
    );
    // The other constructs were pool hits, and the accounting stays exact:
    // allocated ids == blocks * block size >= ids handed out.
    let hits = obs.sum_counters("pmix", "pgcid_pool_hits");
    assert_eq!(hits as usize + requests, DUPS + 1);
    assert_eq!(
        obs.sum_counters("pmix", "pgcid_allocated"),
        requests as u64 * pmix::DEFAULT_PGCID_BLOCK
    );
}

#[test]
fn concurrent_dups_coalesce_on_one_refill() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 1));
    launcher
        .spawn(JobSpec::new(1), |ctx| {
            let (s, c) = world_comm(&ctx, "hot-coalesce");
            // Exhaust the parent's derivation block: 255 serial dups.
            let serial: Vec<Comm> = (0..255).map(|_| c.dup().unwrap()).collect();
            // Four concurrent dups now race into the exhausted pool. The
            // refill lock lets exactly one of them pay the PMIx trip; the
            // rest block and derive from the refilled block.
            let concurrent: Vec<Comm> = std::thread::scope(|sc| {
                let handles: Vec<_> =
                    (0..4).map(|_| sc.spawn(|| c.dup().unwrap())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut seen: HashSet<_> = serial.iter().map(|d| d.excid().unwrap()).collect();
            seen.extend(concurrent.iter().map(|d| d.excid().unwrap()));
            assert_eq!(seen.len(), 259, "every exCID unique");
            for d in serial.into_iter().chain(concurrent) {
                d.free().unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("coalesce job");

    let obs = launcher.universe().fabric().obs();
    // Exactly two PGCID acquisitions ever: the parent's own block and ONE
    // refill shared by all four concurrent dups.
    assert_eq!(obs.sum_counters("cid", "refills"), 2, "refills did not coalesce");
    assert_eq!(obs.events_named("cid.refill").len(), 1, "one refill event");
    assert_eq!(obs.sum_counters("cid", "derivations"), 259);
}
