//! Protocol invariants asserted from observability counters **alone** —
//! no peeking at PML internals:
//!
//! * the exCID→local-CID switchover performs exactly one extended-header
//!   handshake per (communicator, peer) pair, after which every message
//!   rides the compact 14-byte header (paper §III-B4);
//! * a 300-dup sibling chain costs exactly two PGCID block acquisitions
//!   (the communicator's own plus one refill at dup #256) while handing
//!   out 300 locally-derived exCIDs (paper §III-B3).

//! * every `Comm::free` releases the local CID (counted under
//!   `cid.released`), derived exCIDs return their subfield to the parent
//!   pool, and a later dup resumes the freed subfield instead of deriving
//!   a fresh one — so sustained create/free churn cannot exhaust either
//!   space.

use mpi_sessions::{Comm, ErrHandler, Info, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use simnet::SimTestbed;
use std::collections::HashSet;

fn world_comm(ctx: &ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn handshake_happens_exactly_once_per_comm_peer() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 1));
    let eps = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, c) = world_comm(&ctx, "obs-hs");
            if ctx.rank() == 0 {
                // First send carries the extended header: rank 1 does not
                // yet know our local CID for this communicator.
                c.send(1, 7, b"first").unwrap();
                // Receiving rank 1's reply drives our progress loop, which
                // also absorbs the CID ACK riding ahead of it — after this
                // the handshake is complete on both sides.
                let (go, _) = c.recv(1, 8).unwrap();
                assert_eq!(go, b"go");
                // Pure fast path from here on.
                for i in 0..10u8 {
                    c.send(1, 9, &[i]).unwrap();
                }
            } else {
                let (m, _) = c.recv(0, 7).unwrap();
                assert_eq!(m, b"first");
                c.send(0, 8, b"go").unwrap();
                for _ in 0..10 {
                    c.recv(0, 9).unwrap();
                }
            }
            let ep = ctx.endpoint().id().to_string();
            c.free().unwrap();
            s.finalize().unwrap();
            ep
        })
        .join()
        .expect("handshake job");

    let obs = launcher.universe().fabric().obs();
    // Totals across both processes: one extended-header send, one ACK, one
    // handshake completion per side, and never a repeated ext send.
    assert_eq!(obs.sum_counters("pml", "ext_sent"), 1, "one extended-header send total");
    assert_eq!(obs.sum_counters("pml", "acks_sent"), 1, "one CID ACK total");
    assert_eq!(obs.sum_counters("pml", "handshakes"), 2, "each side completes once");
    assert_eq!(obs.sum_counters("pml", "ext_fallback"), 0, "no repeat ext sends");
    // Rank 1's reply plus rank 0's ten fast-path messages.
    assert_eq!(obs.sum_counters("pml", "eager_sent"), 11);
    // Per-side split: rank 0 initiated, rank 1 acknowledged.
    assert_eq!(obs.counter_value(&eps[0], "pml", "ext_sent"), 1);
    assert_eq!(obs.counter_value(&eps[0], "pml", "handshakes"), 1);
    assert_eq!(obs.counter_value(&eps[1], "pml", "acks_sent"), 1);
    assert_eq!(obs.counter_value(&eps[1], "pml", "handshakes"), 1);
}

#[test]
fn dup_chain_of_300_needs_exactly_two_pgcid_refills() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let procs = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, c) = world_comm(&ctx, "obs-dup300");
            let base = c.excid().unwrap().pgcid;
            let children: Vec<Comm> = (0..300).map(|_| c.dup().unwrap()).collect();
            // Structural sanity (the counters below are the real assertion):
            // block 1 covers 255 siblings, dup #256 is the refill, and the
            // rest derive from the refilled block without further PMIx.
            assert!(children[..255].iter().all(|d| d.excid().unwrap().pgcid == base));
            let refill = children[255].excid().unwrap().pgcid;
            assert_ne!(refill, base);
            assert!(children[256..].iter().all(|d| d.excid().unwrap().pgcid == refill));
            let mut seen: HashSet<_> = children.iter().map(|d| d.excid().unwrap()).collect();
            seen.insert(c.excid().unwrap());
            assert_eq!(seen.len(), 301, "every exCID unique");
            drop(children);
            c.free().unwrap();
            s.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("dup job");

    let obs = launcher.universe().fabric().obs();
    for p in &procs {
        // 300 dups were all satisfied by derivation (including the one
        // that triggered the refill) ...
        assert_eq!(obs.counter_value(p, "cid", "derivations"), 300);
        // ... at the cost of exactly two PGCID acquisitions: the parent's
        // own block plus one refill.
        assert_eq!(obs.counter_value(p, "cid", "refills"), 2);
        // The baseline algorithm never ran.
        assert_eq!(obs.counter_value(p, "cid", "consensus_agreements"), 0);
    }
    // One refill event per process, no more.
    assert_eq!(obs.events_named("cid.refill").len(), 2);
}

#[test]
fn every_free_releases_cid_and_derived_subfields_are_returned_then_recycled() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let procs = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, c) = world_comm(&ctx, "obs-release");
            // Two derived children, freed collectively: each free must
            // return its subfield to the parent's pool.
            let d1 = c.dup().unwrap();
            let d2 = c.dup().unwrap();
            let e2 = d2.excid().unwrap();
            d1.free().unwrap();
            d2.free().unwrap();
            // The next dup resumes the most recently freed subfield (d2's)
            // rather than deriving a fresh one.
            let d3 = c.dup().unwrap();
            assert_eq!(d3.excid().unwrap(), e2, "dup after free recycles the subfield");
            d3.free().unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
            ctx.proc().to_string()
        })
        .join()
        .expect("release job");

    let obs = launcher.universe().fabric().obs();
    for p in &procs {
        // Four frees (d1, d2, d3, the parent) — each released its CID.
        assert_eq!(obs.counter_value(p, "cid", "released"), 4);
        // Three of them were derived children returning a subfield ...
        assert_eq!(obs.counter_value(p, "cid", "subfields_returned"), 3);
        // ... and exactly one derivation was served from the freed list.
        assert_eq!(obs.counter_value(p, "cid", "subfields_recycled"), 1);
        // Nothing survived to the teardown audit.
        assert_eq!(obs.counter_value(p, "instance", "cids_leaked_at_teardown"), 0);
    }
    // Both communicator tables drained back to empty.
    assert_eq!(obs.sum_gauges("cid", "table_used"), 0);
}
