//! Cartesian topologies and the variable-count / prefix collectives.

mod common;

use common::run;
use mpi_sessions::topo::{dims_create, CartComm};
use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn cart_coords_roundtrip() {
    run(1, 6, 6, |ctx| {
        let (s, c) = world_comm(&ctx, "cart");
        let cart = CartComm::create(&c, &[3, 2], &[false, false]).unwrap();
        let coords = cart.my_coords();
        assert_eq!(coords, vec![ctx.rank() / 2, ctx.rank() % 2]);
        let back = cart
            .rank_of(&coords.iter().map(|c| *c as i64).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(back, Some(ctx.rank()));
        cart.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn cart_shift_periodic_and_walls() {
    let out = run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "shift");
        // 1-D ring of 4, periodic.
        let ring = CartComm::create(&c, &[4], &[true]).unwrap();
        let (src_p, dst_p) = ring.shift(0, 1).unwrap();
        ring.free().unwrap();
        // 1-D line of 4, walls.
        let line_comm = c.dup().unwrap();
        let line = CartComm::create(&line_comm, &[4], &[false]).unwrap();
        let (src_w, dst_w) = line.shift(0, 1).unwrap();
        line.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        (src_p, dst_p, src_w, dst_w)
    });
    // Periodic: everyone has both neighbors (wrapped).
    assert_eq!(out[0], (Some(3), Some(1), None, Some(1)));
    assert_eq!(out[3], (Some(2), Some(0), Some(2), None));
}

#[test]
fn cart_halo_exchange_moves_data() {
    let out = run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "halo");
        let cart = CartComm::create(&c, &[3], &[true]).unwrap();
        let me = ctx.rank() as u8;
        let (from_low, from_high) =
            cart.halo_exchange(0, 5, &[me, 100], &[me, 200]).unwrap();
        cart.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        (from_low, from_high)
    });
    // from_low = low neighbor's to_high; from_high = high neighbor's to_low.
    assert_eq!(out[1].0, Some(vec![0, 200]));
    assert_eq!(out[1].1, Some(vec![2, 100]));
    assert_eq!(out[0].0, Some(vec![2, 200])); // wrapped
}

#[test]
fn cart_sub_splits_grid() {
    let out = run(1, 6, 6, |ctx| {
        let (s, c) = world_comm(&ctx, "sub");
        let grid = CartComm::create(&c, &[3, 2], &[false, false]).unwrap();
        // Keep dim 1 => rows of 2.
        let row = grid.sub(&[false, true]).unwrap();
        let row_size = row.comm().size();
        let row_sum =
            coll::allreduce_t(row.comm(), ReduceOp::Sum, &[ctx.rank()]).unwrap()[0];
        row.free().unwrap();
        grid.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        (row_size, row_sum)
    });
    assert_eq!(out[0], (2, 1)); // ranks 0+1
    assert_eq!(out[2], (2, 5)); // ranks 2+3
    assert_eq!(out[5], (2, 9)); // ranks 4+5
}

#[test]
fn cart_create_rejects_bad_grid() {
    run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "bad");
        assert!(CartComm::create(&c, &[2, 2], &[false, false]).is_err());
        assert!(CartComm::create(&c, &[3], &[false, true]).is_err());
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn gatherv_variable_lengths() {
    let out = run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "gv");
        // rank r contributes r+1 values.
        let mine: Vec<u32> = (0..=ctx.rank()).map(|i| ctx.rank() * 10 + i).collect();
        let got = coll::gatherv_t(&c, 2, &mine).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        got
    });
    assert!(out[0].is_none());
    let parts = out[2].clone().unwrap();
    assert_eq!(parts[0], vec![0]);
    assert_eq!(parts[1], vec![10, 11]);
    assert_eq!(parts[2], vec![20, 21, 22]);
}

#[test]
fn allgatherv_everyone_gets_everything() {
    let out = run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "agv");
        let mine = vec![ctx.rank() as i64; (ctx.rank() + 1) as usize];
        let got = coll::allgatherv_t(&c, &mine).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        got
    });
    for rank_out in &out {
        assert_eq!(rank_out.len(), 3);
        assert_eq!(rank_out[0], vec![0]);
        assert_eq!(rank_out[1], vec![1, 1]);
        assert_eq!(rank_out[2], vec![2, 2, 2]);
    }
}

#[test]
fn exscan_exclusive_prefix() {
    let out = run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "ex");
        let got = coll::exscan_t(&c, ReduceOp::Sum, &[ctx.rank() as i64 + 1]).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        got
    });
    assert_eq!(out[0], None);
    assert_eq!(out[1], Some(vec![1]));
    assert_eq!(out[2], Some(vec![3]));
    assert_eq!(out[3], Some(vec![6]));
}

#[test]
fn reduce_scatter_block_distributes_reduction() {
    let out = run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "rsb");
        // Each rank contributes [r, r, r+10, r+10]; reduction = [1,1,21,21].
        let r = ctx.rank() as i64;
        let data = vec![r, r, r + 10, r + 10];
        let got = coll::reduce_scatter_block_t(&c, ReduceOp::Sum, &data).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        got
    });
    assert_eq!(out[0], vec![1, 1]);
    assert_eq!(out[1], vec![21, 21]);
}

#[test]
fn dims_create_then_cart_works_for_any_np() {
    for np in [2u32, 4, 6] {
        run(1, np, np, move |ctx| {
            let (s, c) = world_comm(&ctx, "auto");
            let dims = dims_create(np, 2);
            let cart = CartComm::create(&c, &dims, &[true, true]).unwrap();
            cart.barrier().unwrap();
            assert_eq!(cart.dims().iter().product::<u32>(), np);
            cart.free().unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
        });
    }
}
