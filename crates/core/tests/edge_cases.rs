//! Edge cases and error paths across the public API.

mod common;

use common::run;
use mpi_sessions::{coll, Comm, ErrClass, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn wait_data_on_send_request_is_an_error() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "wds");
        if ctx.rank() == 0 {
            let req = c.isend(1, 0, b"x").unwrap();
            let err = req.wait_data().unwrap_err();
            assert_eq!(err.class, ErrClass::Arg);
        } else {
            let _ = c.recv(0, 0).unwrap();
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn typed_recv_with_wrong_width_errors() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "width");
        if ctx.rank() == 0 {
            c.send(1, 0, &[1, 2, 3]).unwrap(); // 3 bytes
        } else {
            let err = c.recv_t::<u64>(0, 0).unwrap_err();
            assert_eq!(err.class, ErrClass::Arg);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn custom_errhandler_fires_on_comm_errors() {
    run(1, 1, 1, |ctx| {
        let hits = Arc::new(AtomicUsize::new(0));
        let handler = {
            let hits = hits.clone();
            ErrHandler::custom(move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        let s = Session::init(&ctx, ThreadLevel::Single, handler.clone(), &Info::null())
            .unwrap();
        let g = s.group_from_pset("mpi://world").unwrap();
        let mut c = Comm::create_from_group(&g, "eh").unwrap();
        c.set_errhandler(handler);
        // Errors detected before reaching the PML do not route through the
        // handler (argument checks return directly); send to a dead/unknown
        // rank *does* go through handler-checked paths.
        let err = c.send(0, -1, b"bad tag").unwrap_err();
        assert_eq!(err.class, ErrClass::Tag);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn zero_byte_messages_roundtrip() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "zb");
        if ctx.rank() == 0 {
            c.send(1, 3, b"").unwrap();
        } else {
            let (data, st) = c.recv(0, 3).unwrap();
            assert!(data.is_empty());
            assert_eq!(st.len, 0);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn empty_collective_payloads() {
    run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "empty");
        let out = coll::allreduce_t::<i64>(&c, ReduceOp::Sum, &[]).unwrap();
        assert!(out.is_empty());
        let got = coll::bcast_t::<u32>(&c, 0, &[]).unwrap();
        assert!(got.is_empty());
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn collective_root_out_of_range() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "badroot");
        assert_eq!(
            coll::bcast_t(&c, 9, &[1u32]).unwrap_err().class,
            ErrClass::Rank
        );
        assert_eq!(
            coll::reduce_t(&c, 9, ReduceOp::Sum, &[1u32]).unwrap_err().class,
            ErrClass::Rank
        );
        assert_eq!(
            coll::gather_t(&c, 9, &[1u32]).unwrap_err().class,
            ErrClass::Rank
        );
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn alltoall_uneven_payload_rejected() {
    run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "a2abad");
        // 4 elements over 3 ranks is not divisible.
        let err = coll::alltoall_t(&c, &[1u32, 2, 3, 4]).unwrap_err();
        assert_eq!(err.class, ErrClass::Arg);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn create_from_group_rejects_unbound_group() {
    // A group assembled by hand (not via a session) has no process binding.
    let g = mpi_sessions::MpiGroup::from_members(vec![]);
    let err = Comm::create_from_group(&g, "unbound").unwrap_err();
    assert_eq!(err.class, ErrClass::Group);
}

#[test]
fn session_after_drop_without_finalize_still_cleans_up() {
    run(1, 1, 1, |ctx| {
        let p = mpi_sessions::instance::MpiProcess::obtain(&ctx);
        {
            let _s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            assert_eq!(p.open_instances(), 1);
            // dropped without finalize
        }
        assert_eq!(p.open_instances(), 0, "RAII must release the instance");
        // And the library is re-initializable afterwards.
        let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
            .unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn many_comms_on_one_session_are_independent() {
    run(1, 2, 2, |ctx| {
        let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
            .unwrap();
        let g = s.group_from_pset("mpi://world").unwrap();
        let comms: Vec<Comm> = (0..10)
            .map(|i| Comm::create_from_group(&g, &format!("multi{i}")).unwrap())
            .collect();
        // Interleave traffic over all of them; tags collide across comms on
        // purpose — contexts must keep them apart.
        for (i, c) in comms.iter().enumerate() {
            if ctx.rank() == 0 {
                c.send_t(1, 7, &[i as u64]).unwrap();
            }
        }
        if ctx.rank() == 1 {
            for (i, c) in comms.iter().enumerate().rev() {
                let (v, _) = c.recv_t::<u64>(0, 7).unwrap();
                assert_eq!(v[0], i as u64, "message crossed communicators");
            }
        }
        for c in comms {
            c.free().unwrap();
        }
        s.finalize().unwrap();
    });
}

#[test]
fn scan_on_single_rank_is_identity() {
    run(1, 1, 1, |ctx| {
        let (s, c) = world_comm(&ctx, "scan1");
        assert_eq!(coll::scan_t(&c, ReduceOp::Sum, &[5i64]).unwrap(), vec![5]);
        assert_eq!(coll::exscan_t(&c, ReduceOp::Sum, &[5i64]).unwrap(), None);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}
