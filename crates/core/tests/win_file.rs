//! RMA windows and files created from groups (paper §III-B6).

mod common;

use common::run;
use mpi_sessions::file::{FileMode, MpiFile};
use mpi_sessions::win::Win;
use mpi_sessions::{ErrHandler, Info, Session, ThreadLevel};

fn session_group(ctx: &prrte::ProcCtx) -> (Session, mpi_sessions::MpiGroup) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    (s, g)
}

#[test]
fn win_put_is_visible_after_fence() {
    run(1, 2, 2, |ctx| {
        let (s, g) = session_group(&ctx);
        let win = Win::allocate_from_group(&g, "put", 64).unwrap();
        let me = ctx.rank();
        // Everyone puts its rank byte into the peer's window at offset=me.
        win.put(1 - me, me as usize, &[me as u8 + 1]).unwrap();
        win.fence().unwrap();
        let local = win.read_local(0, 2).unwrap();
        // Peer wrote at its own rank offset.
        let peer = 1 - me;
        assert_eq!(local[peer as usize], peer as u8 + 1);
        win.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn win_get_fetches_remote_memory() {
    run(1, 3, 3, |ctx| {
        let (s, g) = session_group(&ctx);
        let win = Win::allocate_from_group(&g, "get", 16).unwrap();
        let me = ctx.rank();
        win.write_local(0, &[me as u8; 4]).unwrap();
        win.fence().unwrap(); // epoch: everyone's memory initialized
        let next = (me + 1) % 3;
        let h = win.get(next, 0, 4).unwrap();
        assert!(h.result().is_err(), "get must not complete before fence");
        win.fence().unwrap();
        assert_eq!(h.result().unwrap(), vec![next as u8; 4]);
        win.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn win_self_ops_resolve_locally() {
    run(1, 1, 1, |ctx| {
        let (s, g) = session_group(&ctx);
        let win = Win::allocate_from_group(&g, "selfops", 8).unwrap();
        win.put(0, 2, &[7, 8]).unwrap();
        let h = win.get(0, 0, 4).unwrap();
        win.fence().unwrap();
        assert_eq!(h.result().unwrap(), vec![0, 0, 7, 8]);
        win.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn win_bounds_are_checked() {
    run(1, 1, 1, |ctx| {
        let (s, g) = session_group(&ctx);
        let win = Win::allocate_from_group(&g, "bounds", 8).unwrap();
        assert!(win.read_local(6, 4).is_err());
        assert!(win.write_local(7, &[1, 2]).is_err());
        assert!(win.put(3, 0, &[1]).is_err(), "rank out of range");
        assert!(win.get(9, 0, 1).is_err());
        win.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn win_large_transfer_uses_rendezvous() {
    run(1, 2, 2, |ctx| {
        let (s, g) = session_group(&ctx);
        let win = Win::allocate_from_group(&g, "bigrma", 100_000).unwrap();
        let me = ctx.rank();
        let pattern = vec![me as u8 ^ 0xaa; 90_000];
        win.put(1 - me, 0, &pattern).unwrap();
        win.fence().unwrap();
        let peer_pattern = vec![(1 - me) as u8 ^ 0xaa; 90_000];
        assert_eq!(win.read_local(0, 90_000).unwrap(), peer_pattern);
        win.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn file_collective_write_then_read() {
    run(1, 3, 3, |ctx| {
        let (s, g) = session_group(&ctx);
        let f = MpiFile::open_from_group(&g, "t1", "itest-file-coll", FileMode::ReadWrite)
            .unwrap();
        let me = ctx.rank() as usize;
        f.write_at_all(me * 4, &[me as u8; 4]).unwrap();
        let all = f.read_at_all(0, 12).unwrap();
        assert_eq!(all, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert_eq!(f.size(), 12);
        f.close().unwrap();
        s.finalize().unwrap();
        if me == 0 {
            mpi_sessions::file::delete("itest-file-coll");
        }
    });
}

#[test]
fn file_read_only_semantics() {
    run(1, 2, 2, |ctx| {
        let (s, g) = session_group(&ctx);
        // Rank order: create with RW handle first via a self-group file.
        let selfg = s.group_from_pset("mpi://self").unwrap();
        let name = format!("itest-ro-{}", ctx.rank());
        let w = MpiFile::open_from_group(&selfg, "w", &name, FileMode::ReadWrite).unwrap();
        w.write_at(0, b"data").unwrap();
        w.close().unwrap();
        let r = MpiFile::open_from_group(&selfg, "r", &name, FileMode::ReadOnly).unwrap();
        assert_eq!(r.read_at(0, 4), b"data");
        assert!(r.write_at(0, b"nope").is_err());
        // Reads past EOF are short.
        assert_eq!(r.read_at(2, 10), b"ta");
        assert!(r.read_at(10, 4).is_empty());
        r.close().unwrap();
        // Sync before deleting shared state.
        let c = mpi_sessions::Comm::create_from_group(&g, "sync").unwrap();
        mpi_sessions::coll::barrier(&c).unwrap();
        c.free().unwrap();
        mpi_sessions::file::delete(&name);
        s.finalize().unwrap();
    });
}

#[test]
fn file_open_missing_read_only_fails() {
    run(1, 1, 1, |ctx| {
        let (s, g) = session_group(&ctx);
        let err =
            MpiFile::open_from_group(&g, "x", "itest-does-not-exist", FileMode::ReadOnly)
                .unwrap_err();
        assert_eq!(err.class, mpi_sessions::ErrClass::Arg);
        s.finalize().unwrap();
    });
}
