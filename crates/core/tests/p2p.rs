//! Point-to-point semantics: eager & rendezvous protocols, wildcards,
//! ordering, the exCID first-message handshake, and failure surfacing.

mod common;

use common::run;
use mpi_sessions::{Comm, ErrHandler, Info, Session, ThreadLevel, ANY_SOURCE, ANY_TAG};

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn eager_roundtrip_small_message() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "eager");
        if ctx.rank() == 0 {
            c.send(1, 7, b"ping").unwrap();
            let (data, st) = c.recv(1, 8).unwrap();
            assert_eq!(data, b"pong");
            assert_eq!(st.source, 1);
            assert_eq!(st.tag, 8);
        } else {
            let (data, _) = c.recv(0, 7).unwrap();
            assert_eq!(data, b"ping");
            c.send(0, 8, b"pong").unwrap();
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn rendezvous_large_message() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "rdv");
        let big: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        if ctx.rank() == 0 {
            c.send(1, 0, &big).unwrap();
        } else {
            // Post the receive late so the RTS waits in the unexpected queue.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let (data, st) = c.recv(0, 0).unwrap();
            assert_eq!(st.len, big.len());
            assert_eq!(data, big);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn rendezvous_with_preposted_receive() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "rdv-pre");
        let big = vec![0x5au8; 150_000];
        if ctx.rank() == 1 {
            let req = c.irecv(0, 3).unwrap();
            let (data, _) = req.wait_data().unwrap();
            assert_eq!(data.len(), big.len());
        } else {
            std::thread::sleep(std::time::Duration::from_millis(50));
            c.send(1, 3, &big).unwrap();
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn message_ordering_per_pair_is_fifo() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "fifo");
        if ctx.rank() == 0 {
            for i in 0..100u32 {
                c.send_t(1, 1, &[i]).unwrap();
            }
        } else {
            for i in 0..100u32 {
                let (v, _) = c.recv_t::<u32>(0, 1).unwrap();
                assert_eq!(v[0], i, "messages reordered");
            }
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn wildcard_source_and_tag() {
    let got = run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "wild");
        let res = if ctx.rank() == 0 {
            let mut seen = Vec::new();
            for _ in 0..2 {
                let (v, st) = c.recv_t::<u32>(ANY_SOURCE, ANY_TAG).unwrap();
                seen.push((st.source, st.tag, v[0]));
            }
            seen.sort();
            seen
        } else {
            c.send_t(0, 40 + ctx.rank() as i32, &[ctx.rank() * 100]).unwrap();
            Vec::new()
        };
        c.free().unwrap();
        s.finalize().unwrap();
        res
    });
    assert_eq!(got[0], vec![(1, 41, 100), (2, 42, 200)]);
}

#[test]
fn unexpected_messages_queue_until_matched() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "unexp");
        if ctx.rank() == 0 {
            for i in 0..5u32 {
                c.send_t(1, i as i32, &[i]).unwrap();
            }
            // Sync so the peer inspects its queue after everything arrived.
            c.send(1, 100, b"done").unwrap();
        } else {
            let _ = c.recv(0, 100).unwrap();
            // Everything else should be queued as unexpected by now.
            assert!(c.unexpected_queued() >= 4, "queue={}", c.unexpected_queued());
            // Match them out of order.
            for tag in (0..5).rev() {
                let (v, _) = c.recv_t::<u32>(0, tag).unwrap();
                assert_eq!(v[0], tag as u32);
            }
            assert_eq!(c.unexpected_queued(), 0);
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn excid_handshake_switches_to_compact_header() {
    // Paper §III-B4: the first messages carry the extended header; after
    // the receiver's ACK is processed, sends use the compact header.
    let stats = run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "hs");
        let pml = mpi_sessions::instance::MpiProcess::obtain(&ctx).pml().clone();
        let before = pml.stats();
        if ctx.rank() == 0 {
            assert!(!pml.peer_switched(c.local_cid(), 1));
            c.send(1, 0, b"first").unwrap(); // extended
            let _ = c.recv(1, 0).unwrap(); // peer's reply arrives w/ our ACK absorbed
            // Give the ACK time to come back, then progress it in.
            std::thread::sleep(std::time::Duration::from_millis(50));
            pml.progress(None);
            assert!(pml.peer_switched(c.local_cid(), 1), "ACK should have switched the peer");
            c.send(1, 0, b"second").unwrap(); // compact
        } else {
            let _ = c.recv(0, 0).unwrap();
            c.send(0, 0, b"reply").unwrap();
            let _ = c.recv(0, 0).unwrap();
        }
        let after = pml.stats();
        c.free().unwrap();
        s.finalize().unwrap();
        (before, after)
    });
    let (b0, a0) = stats[0];
    // Rank 0 sent one extended and at least one compact message.
    assert!(a0.ext_sent > b0.ext_sent, "no extended sends recorded");
    assert!(a0.eager_sent > b0.eager_sent, "no compact sends recorded");
    // Rank 1 replied to an extended message => it sent exactly one ACK.
    let (b1, a1) = stats[1];
    assert_eq!(a1.acks_sent - b1.acks_sent, 1);
}

#[test]
fn reverse_direction_learns_cid_from_ext_header() {
    // The receiver of an extended header stores the sender's local CID, so
    // its own first send back can already use the compact header.
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "rev");
        let pml = mpi_sessions::instance::MpiProcess::obtain(&ctx).pml().clone();
        if ctx.rank() == 0 {
            c.send(1, 0, b"open").unwrap();
            let _ = c.recv(1, 0).unwrap();
        } else {
            let _ = c.recv(0, 0).unwrap();
            // We learned rank 0's CID from the extended header: no EXT send.
            let before = pml.stats().ext_sent;
            assert!(pml.peer_switched(c.local_cid(), 0));
            c.send(0, 0, b"back").unwrap();
            assert_eq!(pml.stats().ext_sent, before, "reverse send used EXT header");
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn isend_irecv_waitall() {
    run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "nb");
        let me = ctx.rank();
        let n = c.size();
        let mut reqs = Vec::new();
        let payload = vec![me as u8; 64];
        for r in 0..n {
            if r != me {
                reqs.push(c.isend(r, 9, &payload).unwrap());
            }
        }
        let mut recvs = Vec::new();
        for r in 0..n {
            if r != me {
                recvs.push((r, c.irecv(r as i32, 9).unwrap()));
            }
        }
        for (r, req) in recvs {
            let (data, _) = req.wait_data().unwrap();
            assert_eq!(data, vec![r as u8; 64]);
        }
        mpi_sessions::Request::wait_all(reqs).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn typed_transfer_roundtrips_f64() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "typed");
        if ctx.rank() == 0 {
            c.send_t(1, 2, &[1.5f64, -2.25, 1e300]).unwrap();
        } else {
            let (v, st) = c.recv_t::<f64>(0, 2).unwrap();
            assert_eq!(v, vec![1.5, -2.25, 1e300]);
            assert_eq!(st.count::<f64>(), Some(3));
        }
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn sendrecv_exchanges_concurrently() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "sr");
        let me = ctx.rank();
        let other = 1 - me;
        let mine = vec![me as u8; 32];
        let (theirs, st) = c.sendrecv(other, 5, &mine, other as i32, 5).unwrap();
        assert_eq!(theirs, vec![other as u8; 32]);
        assert_eq!(st.source, other as i32);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn self_send_works() {
    run(1, 1, 1, |ctx| {
        let (s, c) = world_comm(&ctx, "self");
        let req = c.irecv(0, 1).unwrap();
        c.send(0, 1, b"loopback").unwrap();
        let (data, _) = req.wait_data().unwrap();
        assert_eq!(&data[..], b"loopback");
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn invalid_rank_and_tag_are_rejected() {
    run(1, 1, 1, |ctx| {
        let (s, c) = world_comm(&ctx, "bad");
        assert_eq!(c.send(5, 0, b"x").unwrap_err().class, mpi_sessions::ErrClass::Rank);
        assert_eq!(c.send(0, -3, b"x").unwrap_err().class, mpi_sessions::ErrClass::Tag);
        assert_eq!(c.irecv(-5, 0).unwrap_err().class, mpi_sessions::ErrClass::Rank);
        assert_eq!(c.irecv(0, -9).unwrap_err().class, mpi_sessions::ErrClass::Tag);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn send_to_dead_peer_fails_with_proc_failed() {
    let launcher = prrte::Launcher::new(simnet::SimTestbed::tiny(1, 2));
    let handle = launcher.spawn(prrte::JobSpec::new(2), |ctx| {
        let (s, c) = world_comm(&ctx, "dead");
        if ctx.rank() == 0 {
            // Wait until the runtime killed rank 1.
            let notifier = s.failure_notifier().unwrap();
            let victim = notifier
                .next_timeout(std::time::Duration::from_secs(10))
                .expect("failure event");
            assert_eq!(victim.rank(), 1);
            let err = c.send(1, 0, b"to the void").unwrap_err();
            assert_eq!(err.class, mpi_sessions::ErrClass::ProcFailed);
            // The session itself remains usable for local work.
            assert!(s.pset_names().is_ok());
        } else {
            std::thread::sleep(std::time::Duration::from_secs(2));
        }
        drop(c);
        s.finalize().ok();
        ctx.rank()
    });
    std::thread::sleep(std::time::Duration::from_millis(400));
    handle.kill_rank(1);
    handle.join().unwrap();
}
