//! Communicator derivation: dup (all three paths), split, create_group,
//! free, CID-space fragmentation, and the exCID derivation rules end-to-end.

mod common;

use common::run;
use mpi_sessions::comm::CidOrigin;
use mpi_sessions::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

#[test]
fn dup_of_sessions_comm_derives_locally() {
    // The exCID design point: derived communicators need no agreement
    // traffic and no new PGCID for up to 2^8 children per level.
    let out = run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "dup");
        let d = c.dup().unwrap();
        assert_eq!(d.cid_origin(), CidOrigin::Derived);
        // Parent PGCID is inherited; subfield 7 stamps the child.
        assert_eq!(d.excid().unwrap().pgcid, c.excid().unwrap().pgcid);
        assert_eq!(d.excid().unwrap().subfield(7), 1);
        let sum = coll::allreduce_t(&d, ReduceOp::Sum, &[1u32]).unwrap()[0];
        let excid = d.excid().unwrap();
        d.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        (excid, sum)
    });
    assert_eq!(out[0].1, 2);
    // Both ranks derived the same child exCID without communicating.
    assert_eq!(out[0].0, out[1].0);
}

#[test]
fn dup_chain_crosses_levels_and_stays_usable() {
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "chain");
        let mut cur = c.dup().unwrap();
        for depth in 0..6 {
            let next = cur.dup().unwrap();
            let sum = coll::allreduce_t(&next, ReduceOp::Sum, &[depth as u64]).unwrap()[0];
            assert_eq!(sum, 2 * depth as u64);
            cur.free().unwrap();
            cur = next;
        }
        cur.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn deep_dup_chain_falls_back_to_new_pgcid() {
    // After 7 levels the active subfield hits 0; the 8th derivation must
    // fetch a fresh PGCID (paper §III-B3 exhaustion rule).
    run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "deep");
        let mut chain = vec![c];
        for _ in 0..7 {
            let next = chain.last().unwrap().dup().unwrap();
            assert_eq!(next.cid_origin(), CidOrigin::Derived);
            chain.push(next);
        }
        let eighth = chain.last().unwrap().dup().unwrap();
        assert_eq!(eighth.cid_origin(), CidOrigin::Pgcid, "depth-8 dup needs a new PGCID");
        assert_ne!(eighth.excid().unwrap().pgcid, chain[0].excid().unwrap().pgcid);
        coll::barrier(&eighth).unwrap();
        eighth.free().unwrap();
        for c in chain {
            c.free().unwrap();
        }
        s.finalize().unwrap();
    });
}

#[test]
fn exhaustion_fallback_is_counted_and_typed() {
    // Regression: both exhaustion modes of the derivation rules (depth =
    // active subfield hit 0, width = 255 children at one level) must be
    // *observable* — a counter bump plus an event naming the mode — not a
    // silent fallback, and never an 8-bit wrap that would alias children.
    use prrte::{JobSpec, Launcher};
    use simnet::SimTestbed;
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let handle = launcher.spawn(JobSpec::new(2), |ctx| {
        let (s, c) = world_comm(&ctx, "exhaust");
        // Depth: walk the chain until the active subfield is 0, then dup.
        let mut chain = vec![c];
        for _ in 0..7 {
            chain.push(chain.last().unwrap().dup().unwrap());
        }
        let fallback = chain.last().unwrap().dup().unwrap();
        assert_eq!(fallback.cid_origin(), CidOrigin::Pgcid, "depth-8 dup refills");
        // Width: drain the refill block's 255 slots, then one more.
        let mut kids = Vec::new();
        for _ in 0..255 {
            let k = fallback.dup().unwrap();
            assert_eq!(k.cid_origin(), CidOrigin::Derived);
            kids.push(k);
        }
        let wide = fallback.dup().unwrap();
        assert_eq!(wide.cid_origin(), CidOrigin::Pgcid, "256th child refills");
        coll::barrier(&wide).unwrap();
        wide.free().unwrap();
        for k in kids {
            k.free().unwrap();
        }
        fallback.free().unwrap();
        for c in chain {
            c.free().unwrap();
        }
        s.finalize().unwrap();
    });
    handle.join().unwrap();
    let obs = launcher.universe().fabric().obs();
    // One depth + one width exhaustion per rank.
    assert_eq!(obs.sum_counters("cid", "subfield_exhausted"), 4);
    let evs = obs.events_named("cid.subfield_exhausted");
    let mut reasons: Vec<&str> =
        evs.iter().filter_map(|e| e.attr("reason").and_then(|v| v.as_str())).collect();
    reasons.sort();
    assert_eq!(reasons, vec!["depth", "depth", "width", "width"]);
}

#[test]
fn dup_via_group_always_acquires_pgcid() {
    // The prototype path measured in the paper's Fig. 4.
    let out = run(1, 2, 2, |ctx| {
        let (s, c) = world_comm(&ctx, "dvg");
        let d1 = c.dup_via_group().unwrap();
        let d2 = c.dup_via_group().unwrap();
        assert_eq!(d1.cid_origin(), CidOrigin::Pgcid);
        let (p0, p1, p2) =
            (c.excid().unwrap().pgcid, d1.excid().unwrap().pgcid, d2.excid().unwrap().pgcid);
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        coll::barrier(&d2).unwrap();
        d2.free().unwrap();
        d1.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        (p1, p2)
    });
    // PGCIDs agree across ranks.
    assert_eq!(out[0], out[1]);
}

#[test]
fn wpm_dup_uses_consensus_and_agrees() {
    let out = run(2, 2, 4, |ctx| {
        let world = mpi_sessions::world::init(&ctx).unwrap();
        let d = world.comm().dup().unwrap();
        assert_eq!(d.cid_origin(), CidOrigin::Consensus);
        assert!(d.excid().is_none());
        let sum = coll::allreduce_t(&d, ReduceOp::Sum, &[1i32]).unwrap()[0];
        let cid = d.local_cid();
        d.free().unwrap();
        world.finalize().unwrap();
        (cid, sum)
    });
    assert!(out.iter().all(|(_, s)| *s == 4));
    // The consensus CID is identical everywhere — that is its contract.
    let cid0 = out[0].0;
    assert!(out.iter().all(|(c, _)| *c == cid0));
}

#[test]
fn consensus_handles_fragmented_cid_space() {
    // Fragment the local table asymmetrically on one rank, then require
    // agreement: the consensus must still converge (on a higher index),
    // exactly the §III-B2 multi-round behavior.
    let out = run(1, 2, 2, |ctx| {
        let world = mpi_sessions::world::init(&ctx).unwrap();
        // Rank 1 burns local CIDs 2..6 via session comms (local-only claims).
        let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
            .unwrap();
        let mut burners = Vec::new();
        if ctx.rank() == 1 {
            let g = s.group_from_pset("mpi://self").unwrap();
            for i in 0..5 {
                burners.push(Comm::create_from_group(&g, &format!("burn{i}")).unwrap());
            }
        }
        let rounds = world.comm().probe_consensus_rounds().unwrap();
        let d = world.comm().dup().unwrap();
        let cid = d.local_cid();
        let sum = coll::allreduce_t(&d, ReduceOp::Sum, &[1u32]).unwrap()[0];
        d.free().unwrap();
        for b in burners {
            b.free().unwrap();
        }
        s.finalize().unwrap();
        world.finalize().unwrap();
        (rounds, cid, sum)
    });
    assert_eq!(out[0].2, 2);
    assert_eq!(out[0].1, out[1].1, "consensus CIDs must agree");
    assert!(out[0].1 >= 7, "agreed CID must clear rank 1's burned slots");
    assert!(out[0].0 >= 2, "fragmentation should cost extra consensus rounds");
}

#[test]
fn split_by_parity() {
    let out = run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "split");
        let color = ctx.rank() % 2;
        let sub = c.split(color, ctx.rank()).unwrap();
        assert_eq!(sub.size(), 2);
        let sum = coll::allreduce_t(&sub, ReduceOp::Sum, &[ctx.rank()]).unwrap()[0];
        sub.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        sum
    });
    assert_eq!(out, vec![2, 4, 2, 4]); // evens: 0+2, odds: 1+3
}

#[test]
fn split_with_key_reorders_ranks() {
    let out = run(1, 3, 3, |ctx| {
        let (s, c) = world_comm(&ctx, "splitkey");
        // Reverse order via descending keys.
        let sub = c.split(0, 100 - ctx.rank()).unwrap();
        let r = sub.rank();
        sub.free().unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        r
    });
    assert_eq!(out, vec![2, 1, 0]);
}

#[test]
fn create_group_partial_participation() {
    let out = run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "cgrp");
        let res = if ctx.rank() < 2 {
            let sub = c.group().incl(&[0, 1]).unwrap();
            let gc = c.create_group(&sub, 7).unwrap();
            // Partial participation always takes a fresh identifier.
            assert_eq!(gc.cid_origin(), CidOrigin::Pgcid);
            let v = coll::allreduce_t(&gc, ReduceOp::Sum, &[10u32]).unwrap()[0];
            gc.free().unwrap();
            v
        } else {
            0
        };
        // Everyone still meets on the parent afterwards.
        coll::barrier(&c).unwrap();
        c.free().unwrap();
        s.finalize().unwrap();
        res
    });
    assert_eq!(out, vec![20, 20, 0, 0]);
}

#[test]
fn create_group_on_wpm_uses_subgroup_consensus() {
    let out = run(1, 4, 4, |ctx| {
        let world = mpi_sessions::world::init(&ctx).unwrap();
        let res = if ctx.rank() % 2 == 0 {
            let sub = world.comm().group().incl(&[0, 2]).unwrap();
            let gc = world.comm().create_group(&sub, 3).unwrap();
            assert_eq!(gc.cid_origin(), CidOrigin::Consensus);
            let v = coll::allreduce_t(&gc, ReduceOp::Sum, &[5u32]).unwrap()[0];
            let cid = gc.local_cid();
            gc.free().unwrap();
            (v, cid)
        } else {
            (0, 0)
        };
        coll::barrier(world.comm()).unwrap();
        world.finalize().unwrap();
        res
    });
    assert_eq!(out[0].0, 10);
    assert_eq!(out[2].0, 10);
    assert_eq!(out[0].1, out[2].1, "subgroup consensus CIDs agree");
}

#[test]
fn freed_comm_rejects_operations() {
    run(1, 1, 1, |ctx| {
        let (s, c) = world_comm(&ctx, "freed");
        let c2 = c.clone();
        c.free().unwrap();
        assert!(c2.send(0, 0, b"x").is_err());
        assert!(c2.dup().is_err());
        s.finalize().unwrap();
    });
}

#[test]
fn local_cid_reuse_after_free() {
    run(1, 1, 1, |ctx| {
        let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
            .unwrap();
        let g = s.group_from_pset("mpi://self").unwrap();
        let c1 = Comm::create_from_group(&g, "a").unwrap();
        let cid1 = c1.local_cid();
        c1.free().unwrap();
        let c2 = Comm::create_from_group(&g, "b").unwrap();
        // Lowest-free policy reuses the slot.
        assert_eq!(c2.local_cid(), cid1);
        c2.free().unwrap();
        s.finalize().unwrap();
    });
}

#[test]
fn group_operations_on_comm_group() {
    run(1, 4, 4, |ctx| {
        let (s, c) = world_comm(&ctx, "gops");
        let g = c.group();
        assert_eq!(g.size(), 4);
        assert_eq!(g.rank_of(ctx.proc()), Some(ctx.rank() as usize));
        let evens = g.incl(&[0, 2]).unwrap();
        let odds = g.excl(&[0, 2]).unwrap();
        assert_eq!(evens.union(&odds).size(), 4);
        assert_eq!(evens.intersection(&odds).size(), 0);
        c.free().unwrap();
        s.finalize().unwrap();
    });
}
