//! # quo — a QUO runtime analog
//!
//! QUO ("status quo") dynamically reconfigures run-time environments for
//! coupled multithreaded message-passing applications: between an
//! MPI-everywhere phase (the paper's 2MESH library L0) and an MPI+OpenMP
//! phase (L1), some processes become thread hosts and the rest **quiesce**.
//! The performance-critical primitive is `QUO_barrier`, the node-scoped
//! barrier processes sit in while quiesced.
//!
//! Two backends mirror the paper's §IV-E comparison:
//!
//! * [`QuoBackend::Native`] — QUO 1.3's low-overhead mechanism, modelled as
//!   a node-local shared-memory sense-reversing barrier (the processes of a
//!   node share an OS process here, so a shared object *is* shared memory);
//! * [`QuoBackend::Sessions`] — the prototype integration: `QUO_create`
//!   initializes its own MPI session, builds a node-local communicator
//!   from the `mpi://shared` pset, and emulates a low-perturbation barrier
//!   by looping over `MPI_Ibarrier` + `nanosleep` — the paper attributes
//!   its ≤3% overhead (Fig. 7) to exactly this emulation.

use mpi_sessions::{coll, Comm, ErrHandler, Info, Session, ThreadLevel};
use parking_lot::{Condvar, Mutex};
use prrte::ProcCtx;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Which quiescence mechanism a QUO context uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoBackend {
    /// Shared-memory node barrier (QUO 1.3 baseline).
    Native,
    /// Sessions-aware `MPI_Ibarrier` + `nanosleep` loop (the prototype).
    Sessions,
}

/// Node-local sense-reversing barrier (the shared-memory fast path).
struct NodeBarrier {
    state: Mutex<(usize, bool)>, // (arrived, sense)
    cv: Condvar,
    parties: usize,
}

impl NodeBarrier {
    fn new(parties: usize) -> Self {
        Self { state: Mutex::new((0, false)), cv: Condvar::new(), parties }
    }

    fn wait(&self) {
        let mut st = self.state.lock();
        let sense = st.1;
        st.0 += 1;
        if st.0 == self.parties {
            st.0 = 0;
            st.1 = !sense;
            self.cv.notify_all();
        } else {
            while st.1 == sense {
                self.cv.wait(&mut st);
            }
        }
    }
}

type BarrierKey = (String, u32); // (namespace, node)
static NODE_BARRIERS: Mutex<Option<HashMap<BarrierKey, Arc<NodeBarrier>>>> = Mutex::new(None);

fn node_barrier(nspace: &str, node: u32, parties: usize) -> Arc<NodeBarrier> {
    let mut reg = NODE_BARRIERS.lock();
    let map = reg.get_or_insert_with(HashMap::new);
    map.entry((nspace.to_owned(), node))
        .or_insert_with(|| Arc::new(NodeBarrier::new(parties)))
        .clone()
}

enum Backend {
    Native { barrier: Arc<NodeBarrier> },
    Sessions { session: Session, node_comm: Comm },
}

/// A QUO context (`QUO_context`).
pub struct Quo {
    backend: Backend,
    /// Rank among the node's processes (`QUO_id`).
    qid: u32,
    /// Processes on this node (`QUO_nqids`).
    nqids: u32,
    /// Simulated binding stack (`QUO_bind_push`/`pop`).
    bind_stack: Mutex<Vec<String>>,
    /// Sleep interval of the ibarrier+nanosleep emulation.
    pub nanosleep: Duration,
}

impl Quo {
    /// `QUO_create`: build a context over the calling process's node.
    ///
    /// With [`QuoBackend::Sessions`] this performs the MPI Sessions
    /// initialization sequence internally — the paper integrated the
    /// prototype into 2MESH *through* this call so the application itself
    /// needed no direct modification (~20 SLOC in QUO).
    pub fn create(ctx: &ProcCtx, backend: QuoBackend) -> mpi_sessions::Result<Quo> {
        let local_peers = ctx.pmix().local_peers().map_err(mpi_sessions::MpiError::from)?;
        let nqids = local_peers.len() as u32;
        let qid = local_peers
            .iter()
            .position(|r| *r == ctx.rank())
            .expect("caller must be among its node's peers") as u32;
        let backend = match backend {
            QuoBackend::Native => Backend::Native {
                barrier: node_barrier(ctx.proc().nspace(), ctx.node().0, nqids as usize),
            },
            QuoBackend::Sessions => {
                let session =
                    Session::init(ctx, ThreadLevel::Funneled, ErrHandler::Return, &Info::null())?;
                let group = session.group_from_pset(mpi_sessions::session::PSET_SHARED)?;
                let node_comm = Comm::create_from_group(&group, "quo-node")?;
                Backend::Sessions { session, node_comm }
            }
        };
        Ok(Quo {
            backend,
            qid,
            nqids,
            bind_stack: Mutex::new(Vec::new()),
            nanosleep: Duration::from_micros(50),
        })
    }

    /// `QUO_id`: this process's index among its node's processes.
    pub fn id(&self) -> u32 {
        self.qid
    }

    /// `QUO_nqids`: how many processes share this node.
    pub fn nqids(&self) -> u32 {
        self.nqids
    }

    /// Which backend this context uses.
    pub fn backend(&self) -> QuoBackend {
        match self.backend {
            Backend::Native { .. } => QuoBackend::Native,
            Backend::Sessions { .. } => QuoBackend::Sessions,
        }
    }

    /// `QUO_barrier`: node-scoped quiescence point.
    pub fn barrier(&self) -> mpi_sessions::Result<()> {
        match &self.backend {
            Backend::Native { barrier } => {
                barrier.wait();
                Ok(())
            }
            Backend::Sessions { node_comm, .. } => {
                // The paper's emulation: alternate MPI_Ibarrier progression
                // with nanosleep until completion (low perturbation of the
                // threads computing on this node).
                let mut req = coll::ibarrier(node_comm)?;
                while !req.test()? {
                    std::thread::sleep(self.nanosleep);
                }
                Ok(())
            }
        }
    }

    /// `QUO_auto_distrib`: elect up to `workers_per_node` processes per
    /// node as thread hosts for an MPI+X phase. Returns whether the caller
    /// is a worker. Deterministic: the lowest node-ranks win.
    pub fn auto_distrib(&self, workers_per_node: u32) -> bool {
        self.qid < workers_per_node.min(self.nqids)
    }

    /// `QUO_bind_push`: push a binding policy (simulated affinity).
    pub fn bind_push(&self, policy: &str) {
        self.bind_stack.lock().push(policy.to_owned());
    }

    /// `QUO_bind_pop`.
    pub fn bind_pop(&self) -> Option<String> {
        self.bind_stack.lock().pop()
    }

    /// Current binding (top of the stack), if any.
    pub fn current_binding(&self) -> Option<String> {
        self.bind_stack.lock().last().cloned()
    }

    /// `QUO_free`: release the context (finalizes the internal session for
    /// the Sessions backend).
    pub fn free(self) -> mpi_sessions::Result<()> {
        match self.backend {
            Backend::Native { .. } => Ok(()),
            Backend::Sessions { session, node_comm } => {
                node_comm.free()?;
                session.finalize()
            }
        }
    }
}

impl std::fmt::Debug for Quo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quo")
            .field("backend", &self.backend())
            .field("qid", &self.qid)
            .field("nqids", &self.nqids)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prrte::{JobSpec, Launcher};
    use simnet::SimTestbed;

    fn run<T: Send + 'static>(
        nodes: u32,
        slots: u32,
        np: u32,
        f: impl Fn(ProcCtx) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        Launcher::new(SimTestbed::tiny(nodes, slots))
            .spawn(JobSpec::new(np), f)
            .join()
            .unwrap()
    }

    #[test]
    fn native_barrier_synchronizes_node() {
        run(2, 2, 4, |ctx| {
            let quo = Quo::create(&ctx, QuoBackend::Native).unwrap();
            assert_eq!(quo.nqids(), 2);
            for _ in 0..5 {
                quo.barrier().unwrap();
            }
            quo.free().unwrap();
        });
    }

    #[test]
    fn sessions_barrier_synchronizes_node() {
        run(2, 2, 4, |ctx| {
            let quo = Quo::create(&ctx, QuoBackend::Sessions).unwrap();
            assert_eq!(quo.backend(), QuoBackend::Sessions);
            for _ in 0..3 {
                quo.barrier().unwrap();
            }
            quo.free().unwrap();
        });
    }

    #[test]
    fn qids_are_node_local_and_dense() {
        let out = run(2, 2, 4, |ctx| {
            let quo = Quo::create(&ctx, QuoBackend::Native).unwrap();
            let r = (ctx.rank(), quo.id(), quo.nqids());
            quo.free().unwrap();
            r
        });
        // map-by-slot: ranks 0,1 on node 0; ranks 2,3 on node 1.
        assert_eq!(out[0], (0, 0, 2));
        assert_eq!(out[1], (1, 1, 2));
        assert_eq!(out[2], (2, 0, 2));
        assert_eq!(out[3], (3, 1, 2));
    }

    #[test]
    fn auto_distrib_elects_lowest_qids() {
        let out = run(1, 4, 4, |ctx| {
            let quo = Quo::create(&ctx, QuoBackend::Native).unwrap();
            let w = quo.auto_distrib(2);
            quo.barrier().unwrap();
            quo.free().unwrap();
            w
        });
        assert_eq!(out, vec![true, true, false, false]);
    }

    #[test]
    fn bind_stack_push_pop() {
        run(1, 1, 1, |ctx| {
            let quo = Quo::create(&ctx, QuoBackend::Native).unwrap();
            assert!(quo.current_binding().is_none());
            quo.bind_push("OBJ_SOCKET");
            quo.bind_push("OBJ_CORE");
            assert_eq!(quo.current_binding().as_deref(), Some("OBJ_CORE"));
            assert_eq!(quo.bind_pop().as_deref(), Some("OBJ_CORE"));
            assert_eq!(quo.current_binding().as_deref(), Some("OBJ_SOCKET"));
            quo.free().unwrap();
        });
    }

    #[test]
    fn sessions_backend_coexists_with_wpm_app() {
        // The 2MESH pattern: the app initializes MPI via MPI_Init_thread,
        // then L1 calls QUO_create which opens a session internally.
        run(1, 2, 2, |ctx| {
            let world =
                mpi_sessions::world::init_thread(&ctx, ThreadLevel::Funneled).unwrap();
            let quo = Quo::create(&ctx, QuoBackend::Sessions).unwrap();
            coll::barrier(world.comm()).unwrap();
            quo.barrier().unwrap();
            coll::barrier(world.comm()).unwrap();
            quo.free().unwrap();
            world.finalize().unwrap();
        });
    }
}
