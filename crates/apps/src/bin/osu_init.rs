//! `osu_init` — MPI startup-time microbenchmark (paper Fig. 3).
//!
//! Usage: `osu_init [--nodes N] [--ppn P] [--mode wpm|sessions] [--reps R]`

use apps::osu::osu_init;
use apps::{cli_opt, InitMode};
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = cli_opt(&args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(2);
    let ppn: u32 = cli_opt(&args, "--ppn").and_then(|v| v.parse().ok()).unwrap_or(2);
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);
    let modes: Vec<InitMode> = match cli_opt(&args, "--mode").as_deref() {
        Some(m) => vec![InitMode::parse(m).expect("mode is wpm|sessions")],
        None => vec![InitMode::Wpm, InitMode::Sessions],
    };

    println!("# OSU MPI Init Test (simulated testbed, jupiter cost model)");
    println!("# nodes={nodes} ppn={ppn} reps={reps}");
    println!("{:<18} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "mode", "np", "total(ms)", "sess_init", "grp_pset", "comm_create");
    for mode in modes {
        let mut best = f64::INFINITY;
        let mut pick = None;
        for _ in 0..reps {
            let tb = SimTestbed::jupiter(nodes);
            let mut tb = tb;
            tb.cluster.slots_per_node = ppn.max(1);
            let r = osu_init(tb, nodes * ppn, mode);
            if r.max.total_s < best {
                best = r.max.total_s;
                pick = Some(r);
            }
        }
        let r = pick.expect("at least one rep");
        println!(
            "{:<18} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            mode.to_string(),
            r.np,
            r.max.total_s * 1e3,
            r.max.session_init_s * 1e3,
            r.max.group_from_pset_s * 1e3,
            r.max.comm_create_s * 1e3,
        );
    }
}
