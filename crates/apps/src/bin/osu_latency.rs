//! `osu_latency` — on-node ping-pong latency (paper Fig. 5a).
//!
//! Usage: `osu_latency [--mode wpm|sessions] [--max-size BYTES]
//!                     [--iters N] [--warmup N]`

use apps::osu::{run_latency_job, size_sweep, DEFAULT_ITERS, DEFAULT_WARMUP};
use apps::{cli_opt, InitMode};
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_size: usize =
        cli_opt(&args, "--max-size").and_then(|v| v.parse().ok()).unwrap_or(1 << 20);
    let iters: usize =
        cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_ITERS);
    let warmup: usize =
        cli_opt(&args, "--warmup").and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_WARMUP);
    let modes: Vec<InitMode> = match cli_opt(&args, "--mode").as_deref() {
        Some(m) => vec![InitMode::parse(m).expect("mode is wpm|sessions")],
        None => vec![InitMode::Wpm, InitMode::Sessions],
    };

    println!("# OSU MPI Latency Test (2 processes, single node)");
    for mode in modes {
        println!("# {mode}");
        println!("{:>10} {:>14}", "Size", "Latency (us)");
        let samples = run_latency_job(
            SimTestbed::tiny(1, 2),
            mode,
            size_sweep(max_size),
            warmup,
            iters,
        );
        for s in samples {
            println!("{:>10} {:>14.3}", s.size, s.usec);
        }
    }
}
