//! `osu_bw` — unidirectional bandwidth between two on-node processes.
//!
//! Usage: `osu_bw [--mode wpm|sessions] [--max-size BYTES] [--window W]
//!                [--iters N]`

use apps::osu::{bench_comm, osu_bw, size_sweep};
use apps::{cli_opt, InitMode};
use prrte::{JobSpec, Launcher};
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_size: usize =
        cli_opt(&args, "--max-size").and_then(|v| v.parse().ok()).unwrap_or(1 << 20);
    let window: usize = cli_opt(&args, "--window").and_then(|v| v.parse().ok()).unwrap_or(64);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(20);
    let modes: Vec<InitMode> = match cli_opt(&args, "--mode").as_deref() {
        Some(m) => vec![InitMode::parse(m).expect("mode is wpm|sessions")],
        None => vec![InitMode::Wpm, InitMode::Sessions],
    };

    println!("# OSU MPI Bandwidth Test (2 processes, single node)");
    for mode in modes {
        println!("# {mode}");
        println!("{:>10} {:>14}", "Size", "MB/s");
        let sizes = size_sweep(max_size);
        let launcher = Launcher::new(SimTestbed::tiny(1, 2));
        let out = launcher
            .spawn(JobSpec::new(2), move |ctx| {
                let (session, comm) = bench_comm(&ctx, mode, "osu_bw");
                let samples = osu_bw(&comm, &sizes, window, 2, iters);
                comm.free().unwrap();
                if let Some(s) = session {
                    s.finalize().unwrap();
                }
                samples
            })
            .join()
            .expect("bw job");
        for s in &out[0] {
            println!("{:>10} {:>14.2}", s.size, s.mb_per_s);
        }
    }
}
