//! HPCC 8-byte random/natural-order ring latency (paper Fig. 6).
//!
//! Usage: `hpcc_rings [--nodes N] [--ppn P] [--mode wpm|sessions]
//!                    [--iters N]`

use apps::hpcc::run_hpcc_rings;
use apps::{cli_opt, InitMode};
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = cli_opt(&args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(2);
    let ppn: u32 = cli_opt(&args, "--ppn").and_then(|v| v.parse().ok()).unwrap_or(4);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(50);
    let modes: Vec<InitMode> = match cli_opt(&args, "--mode").as_deref() {
        Some(m) => vec![InitMode::parse(m).expect("mode is wpm|sessions")],
        None => vec![InitMode::Wpm, InitMode::Sessions],
    };

    println!("# HPCC bandwidth/latency component: 8-byte ring latencies");
    println!("# nodes={nodes} ppn={ppn} iters={iters}");
    println!("{:<18} {:>6} {:>16} {:>16}", "mode", "np", "natural (us)", "random (us)");
    for mode in modes {
        let mut tb = SimTestbed::jupiter(nodes);
        tb.cluster.slots_per_node = ppn;
        let res = run_hpcc_rings(tb, nodes * ppn, mode, 5, iters);
        println!(
            "{:<18} {:>6} {:>16.3} {:>16.3}",
            mode.to_string(),
            nodes * ppn,
            res[0].usec,
            res[1].usec
        );
    }
}
