//! mini-2MESH driver: Baseline (native QUO) vs Sessions executables
//! (paper Fig. 7).
//!
//! Usage: `mesh2_app [--nodes N] [--ppn P] [--phases K] [--reps R]`

use apps::cli_opt;
use apps::mesh2::{run_mesh2_median, Mesh2Config};
use quo::QuoBackend;
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = cli_opt(&args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(2);
    let ppn: u32 = cli_opt(&args, "--ppn").and_then(|v| v.parse().ok()).unwrap_or(4);
    let phases: usize = cli_opt(&args, "--phases").and_then(|v| v.parse().ok()).unwrap_or(3);
    let reps: usize = cli_opt(&args, "--reps").and_then(|v| v.parse().ok()).unwrap_or(3);

    let cfg = Mesh2Config { phases, ..Mesh2Config::small() };
    let np = nodes * ppn;
    println!("# mini-2MESH coupled multi-physics run");
    println!("# nodes={nodes} ppn={ppn} np={np} phases={phases} reps={reps}");

    let mut tb = SimTestbed::trinity(nodes);
    tb.cluster.slots_per_node = ppn;
    let base = run_mesh2_median(tb.clone(), np, cfg.clone(), QuoBackend::Native, reps);
    let sess = run_mesh2_median(tb, np, cfg, QuoBackend::Sessions, reps);

    println!("{:<12} {:>14} {:>12} {:>18}", "variant", "time (s)", "normalized", "residual");
    println!("{:<12} {:>14.4} {:>12.3} {:>18.6}", "Baseline", base.elapsed_s, 1.0, base.residual);
    println!(
        "{:<12} {:>14.4} {:>12.3} {:>18.6}",
        "Sessions",
        sess.elapsed_s,
        sess.elapsed_s / base.elapsed_s,
        sess.residual
    );
}
