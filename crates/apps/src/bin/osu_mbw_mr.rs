//! `osu_mbw_mr` — multiple bandwidth / message rate (paper Figs. 5b/5c).
//!
//! Usage: `osu_mbw_mr [--procs N] [--mode wpm|sessions] [--window W]
//!                    [--max-size BYTES] [--iters N] [--presync]`

use apps::osu::{run_mbw_job, size_sweep};
use apps::{cli_flag, cli_opt, InitMode};
use simnet::SimTestbed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let procs: u32 = cli_opt(&args, "--procs").and_then(|v| v.parse().ok()).unwrap_or(2);
    let window: usize = cli_opt(&args, "--window").and_then(|v| v.parse().ok()).unwrap_or(64);
    let max_size: usize =
        cli_opt(&args, "--max-size").and_then(|v| v.parse().ok()).unwrap_or(1 << 16);
    let iters: usize = cli_opt(&args, "--iters").and_then(|v| v.parse().ok()).unwrap_or(20);
    let presync = cli_flag(&args, "--presync");
    let modes: Vec<InitMode> = match cli_opt(&args, "--mode").as_deref() {
        Some(m) => vec![InitMode::parse(m).expect("mode is wpm|sessions")],
        None => vec![InitMode::Wpm, InitMode::Sessions],
    };
    assert!(procs >= 2 && procs.is_multiple_of(2), "--procs must be even");

    println!("# OSU MPI Multiple Bandwidth / Message Rate Test");
    println!("# procs={procs} pairs={} window={window} presync={presync}", procs / 2);
    for mode in modes {
        println!("# {mode}");
        println!("{:>10} {:>14} {:>16}", "Size", "MB/s", "Messages/s");
        let samples = run_mbw_job(
            SimTestbed::tiny(1, procs),
            mode,
            procs,
            size_sweep(max_size),
            window,
            2,
            iters,
            presync,
        );
        for s in samples {
            println!("{:>10} {:>14.2} {:>16.0}", s.size, s.mb_per_s, s.msg_per_s);
        }
    }
}
