//! HPC Challenge bandwidth/latency test: 8-byte natural- and random-order
//! ring latency (the measurements of the paper's Fig. 6).
//!
//! The sessions variant mirrors the authors' modification of HPCC 1.5.0:
//! rather than replacing `MPI_Init`/`MPI_Finalize` in `main()`, the
//! `main_bench_lat_bw` routine *creates its own MPI session* and runs the
//! ring test on the resulting communicator — demonstrating
//! compartmentalized, backwards-compatible adoption of Sessions inside one
//! component of an application.

use crate::InitMode;
use mpi_sessions::{coll, Comm, ErrHandler, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simnet::SimTestbed;
use std::time::Instant;

/// Ring ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingOrder {
    /// Ranks in natural order 0,1,2,...
    Natural,
    /// Ranks in a (seeded) random permutation, as HPCC's random ring.
    Random,
}

/// Result of one ring-latency measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RingResult {
    /// Ring ordering measured.
    pub order: RingOrder,
    /// Which initialization path built the communicator.
    pub mode: InitMode,
    /// Process count.
    pub np: u32,
    /// Average per-hop 8-byte latency in microseconds.
    pub usec: f64,
}

/// The 8-byte ring latency kernel: every process sendrecvs with its ring
/// neighbors for `iters` iterations; reports the average time per
/// iteration (one simultaneous hop around the ring), in µs.
pub fn ring_latency(comm: &Comm, order: RingOrder, warmup: usize, iters: usize, seed: u64) -> f64 {
    let n = comm.size();
    let me = comm.rank();
    // Build the ring ordering (identical on every rank: same seed).
    let position_of: Vec<u32> = match order {
        RingOrder::Natural => (0..n).collect(),
        RingOrder::Random => {
            let mut perm: Vec<u32> = (0..n).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            perm.shuffle(&mut rng);
            perm
        }
    };
    // position_of[i] = rank sitting at ring slot i.
    let my_slot = position_of.iter().position(|r| *r == me).expect("in ring") as u32;
    let left = position_of[((my_slot + n - 1) % n) as usize];
    let right = position_of[((my_slot + 1) % n) as usize];

    let payload = [0u8; 8];
    let run = |count: usize| -> f64 {
        let t0 = Instant::now();
        for _ in 0..count {
            if n == 1 {
                continue;
            }
            // Send right, receive from left (HPCC's ring pattern).
            let _ = comm.sendrecv(right, 11, &payload, left as i32, 11).unwrap();
        }
        t0.elapsed().as_secs_f64()
    };
    let _ = run(warmup);
    coll::barrier(comm).unwrap();
    let secs = run(iters.max(1));
    coll::barrier(comm).unwrap();
    secs * 1e6 / iters.max(1) as f64
}

/// Full HPCC-style run: launches a job, initializes per `mode`, measures
/// both ring orders. Returns rank 0's view.
pub fn run_hpcc_rings(
    testbed: SimTestbed,
    np: u32,
    mode: InitMode,
    warmup: usize,
    iters: usize,
) -> Vec<RingResult> {
    let launcher = Launcher::new(testbed);
    let mut results = launcher
        .spawn(JobSpec::new(np), move |ctx| hpcc_rank_body(&ctx, mode, warmup, iters))
        .join()
        .expect("hpcc job");
    results.swap_remove(0)
}

fn hpcc_rank_body(ctx: &ProcCtx, mode: InitMode, warmup: usize, iters: usize) -> Vec<RingResult> {
    let np = ctx.size();
    match mode {
        InitMode::Wpm => {
            let world = mpi_sessions::world::init(ctx).expect("MPI_Init");
            let nat = ring_latency(world.comm(), RingOrder::Natural, warmup, iters, 42);
            let rnd = ring_latency(world.comm(), RingOrder::Random, warmup, iters, 42);
            let out = vec![
                RingResult { order: RingOrder::Natural, mode, np, usec: nat },
                RingResult { order: RingOrder::Random, mode, np, usec: rnd },
            ];
            world.finalize().expect("MPI_Finalize");
            out
        }
        InitMode::Sessions | InitMode::Lazy => {
            // The application still does its normal WPM init...
            let world = mpi_sessions::world::init(ctx).expect("MPI_Init");
            // ...but the bandwidth/latency component opens its own session
            // and uses a sessions-derived communicator (the paper's change
            // to main_bench_lat_bw).
            let session =
                Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &mode.session_info())
                    .expect("session");
            let group = session
                .group_from_pset(mpi_sessions::session::PSET_WORLD)
                .expect("group");
            let comm = Comm::create_from_group(&group, "hpcc-latbw").expect("comm");
            let nat = ring_latency(&comm, RingOrder::Natural, warmup, iters, 42);
            let rnd = ring_latency(&comm, RingOrder::Random, warmup, iters, 42);
            comm.free().expect("free");
            session.finalize().expect("session fini");
            let out = vec![
                RingResult { order: RingOrder::Natural, mode, np, usec: nat },
                RingResult { order: RingOrder::Random, mode, np, usec: rnd },
            ];
            world.finalize().expect("MPI_Finalize");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_and_random_rings_run_both_modes() {
        for mode in [InitMode::Wpm, InitMode::Sessions] {
            let res = run_hpcc_rings(SimTestbed::tiny(2, 2), 4, mode, 2, 10);
            assert_eq!(res.len(), 2);
            assert_eq!(res[0].order, RingOrder::Natural);
            assert_eq!(res[1].order, RingOrder::Random);
            assert!(res.iter().all(|r| r.usec > 0.0));
        }
    }

    #[test]
    fn single_process_ring_degenerates_gracefully() {
        let res = run_hpcc_rings(SimTestbed::tiny(1, 1), 1, InitMode::Wpm, 1, 5);
        assert_eq!(res.len(), 2);
    }
}
