//! Checkpoint-free recovery: a fault-aware allreduce workload that
//! survives injected kills (DESIGN.md §15).
//!
//! The loop each rank runs is the user-facing composition of the whole
//! fault layer: `Session::track_faults` publishes the survivors pset,
//! `Session::watch_faults` delivers each death exactly once (replayed to
//! late subscribers), and `Comm::repair_via_pset` rebuilds the compute
//! communicator at a pinned registry epoch with typed verdicts the loop
//! branches on — no string matching, no checkpoint files.
//!
//! The collective itself is a ring allreduce built on `irecv` +
//! [`mpi_sessions::Request::wait_data_timeout`], so **every blocking
//! point has a bounded, typed exit**: a dead neighbor surfaces as
//! `ProcTerminated` (fast — the wait's dead-peer check fires well before
//! the budget), a neighbor stalled behind a dead rank surfaces as
//! `Timeout`. Either verdict routes the rank into the repair loop; a
//! rank that finds itself evicted from the survivors pset exits as
//! [`RankOutcome::Removed`].
//!
//! Because ranks observe a fault at different points in the step
//! schedule (one fails mid-ring, its neighbor only next step), the loop
//! re-synchronizes after every repair with a **step agreement**: a ring
//! MIN over each survivor's next step. Survivors resume from the last
//! globally consistent step and recompute anything past it — that
//! recomputation *is* the checkpoint-free restart.

use mpi_sessions::instance::MpiProcess;
use mpi_sessions::session::PSET_WORLD;
use mpi_sessions::{Comm, ErrClass, ErrHandler, Info, Session, ThreadLevel};
use prrte::ProcCtx;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Knobs of the recovery workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoverConfig {
    /// Allreduce steps each rank must complete.
    pub steps: u32,
    /// Per-wait budget inside one ring step (typed `Timeout` after this).
    pub step_wait: Duration,
    /// Total budget for one repair episode (epoch polling + rebuild
    /// retries); exceeding it panics — the drill is wedged.
    pub repair_budget: Duration,
}

impl RecoverConfig {
    /// The drill used by tests and the `fig_recover` harness.
    pub fn small() -> Self {
        RecoverConfig {
            steps: 8,
            step_wait: Duration::from_secs(5),
            repair_budget: Duration::from_secs(30),
        }
    }
}

/// What one rank's recovery loop accomplished.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoverReport {
    /// Steps completed (== `RecoverConfig::steps` for a survivor).
    pub steps_done: u32,
    /// Successful communicator repairs (fault episodes survived).
    pub repairs: u32,
    /// `Stale` verdicts retried (the registry epoch moved mid-repair).
    pub stale_retries: u32,
    /// Ring timeouts / dead-peer verdicts that triggered a repair pass.
    pub step_faults: u32,
    /// Communicator size when the final step ran.
    pub final_size: u32,
    /// Per-step allreduce results (each member contributes 1, so a
    /// step's sum is the communicator size at that step).
    pub sums: Vec<u32>,
}

/// Terminal state of one rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RankOutcome {
    /// Ran every step to completion (possibly across repairs).
    Survivor(RecoverReport),
    /// Evicted from the survivors pset (it was killed): exited the loop
    /// cleanly after `steps_done` completed steps.
    Removed {
        /// Steps completed before the eviction was observed.
        steps_done: u32,
    },
}

impl RankOutcome {
    /// The report, if this rank survived.
    pub fn survivor(&self) -> Option<&RecoverReport> {
        match self {
            RankOutcome::Survivor(r) => Some(r),
            RankOutcome::Removed { .. } => None,
        }
    }
}

/// One full-ring fold over `comm`: every rank contributes `contrib`,
/// passes partial carries `size - 1` hops, and returns
/// `fold(contrib_0, .., contrib_{n-1})`. Built entirely on bounded
/// waits so a fault anywhere in the ring surfaces typed within
/// `wait` per hop instead of parking.
fn ring_fold(
    comm: &Comm,
    tag_base: i32,
    contrib: u32,
    fold: fn(u32, u32) -> u32,
    wait: Duration,
) -> mpi_sessions::Result<u32> {
    let n = comm.size();
    let me = comm.rank();
    let mut acc = contrib;
    if n == 1 {
        return Ok(acc);
    }
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    let mut carry = contrib;
    for hop in 0..(n - 1) {
        let tag = tag_base + hop as i32;
        let mut rreq = comm.irecv(left as i32, tag)?;
        let mut sreq = comm.isend(right, tag, &carry.to_le_bytes())?;
        let (bytes, _) = rreq.wait_data_timeout(wait)?;
        sreq.wait_timeout(wait)?;
        let got = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte carry"));
        acc = fold(acc, got);
        carry = got;
    }
    Ok(acc)
}

/// Tag block for step `step`'s ring (each hop gets its own tag; blocks
/// are disjoint across steps, and comm isolation by CID makes reuse
/// across repair generations safe).
fn step_tag(step: u32) -> i32 {
    0x5000 + (step as i32) * 0x10
}

/// Tag block for the post-repair step-agreement ring.
const AGREE_TAG: i32 = 0x4000;

/// Repair `comm` against the survivors pset, following the typed
/// protocol documented on [`Comm::repair_via_pset`]. Returns the
/// replacement, or `None` when this rank has been evicted.
fn repair(
    session: &Session,
    process: &MpiProcess,
    pset: &str,
    comm: &Comm,
    budget: Duration,
    report: &mut RecoverReport,
) -> Option<Comm> {
    let registry = process.universe().registry();
    let me = process.proc().clone();
    let deadline = Instant::now() + budget;
    loop {
        assert!(
            Instant::now() < deadline,
            "repair exceeded its {budget:?} budget — the recovery drill is wedged"
        );
        let (epoch, members) = registry
            .pset_members_versioned(pset)
            .expect("survivors pset exists while the session is live");
        if !members.contains(&me) {
            return None;
        }
        // Let the failure bridge finish pruning before pinning the epoch:
        // repairing against a membership that still names a corpse is a
        // guaranteed `ProcTerminated` round-trip.
        if members.iter().any(|p| process.universe().proc_is_dead(p)) {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        match comm.repair_via_pset(session, pset, epoch) {
            Ok(next) => {
                report.repairs += 1;
                return Some(next);
            }
            Err(e) => match e.class {
                // The registry moved past our epoch (another fault or
                // churn landed): observe the newer epoch and retry.
                ErrClass::Stale => report.stale_retries += 1,
                // A fault raced the pset shrink: wait for the prune.
                ErrClass::ProcTerminated => std::thread::sleep(Duration::from_millis(2)),
                // The rebuild fan-in timed out (epoch disagreement or a
                // partition): retry within the budget.
                ErrClass::Timeout => {}
                // We were evicted between the membership read and the
                // rebuild.
                ErrClass::Group => return None,
                _ => panic!("unrecoverable repair error: {e}"),
            },
        }
    }
}

/// The per-rank recovery loop: ring-allreduce `cfg.steps` times over the
/// widest available communicator, repairing through every observed fault.
pub fn run_rank(ctx: &ProcCtx, cfg: &RecoverConfig) -> RankOutcome {
    run_rank_with_progress(ctx, cfg, |_| {})
}

/// [`run_rank`] with a progress callback: `on_step(next_step)` fires
/// after every completed step (drivers use it to pace fault injection
/// between steps and to timestamp settle latency).
pub fn run_rank_with_progress(
    ctx: &ProcCtx,
    cfg: &RecoverConfig,
    on_step: impl Fn(u32),
) -> RankOutcome {
    let session =
        Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
            .expect("session init");
    let pset = session.track_faults().expect("track_faults");
    let mut faults = session.watch_faults().expect("watch_faults");
    let process = MpiProcess::obtain(ctx);

    let world = session.group_from_pset(PSET_WORLD).expect("world group");
    let mut comm = Comm::create_from_group(&world, "recover").expect("initial comm");

    let mut report = RecoverReport {
        steps_done: 0,
        repairs: 0,
        stale_retries: 0,
        step_faults: 0,
        final_size: 0,
        sums: Vec::new(),
    };
    let mut step = 0u32;
    let mut dirty = false;
    while step < cfg.steps {
        // Exactly-once fault intake: any death observed since the last
        // check forces a repair pass before the next collective.
        while faults.try_next().is_some() {
            dirty = true;
        }
        if dirty {
            let next = match repair(&session, &process, &pset, &comm, cfg.repair_budget, &mut report)
            {
                Some(c) => c,
                None => return RankOutcome::Removed { steps_done: step },
            };
            std::mem::replace(&mut comm, next).abandon();
            // Survivors reached this repair from different points in the
            // step schedule (one failed mid-ring, its neighbor only on
            // the following step): agree on MIN(next step) and recompute
            // from there — the checkpoint-free restart.
            match ring_fold(&comm, AGREE_TAG, step, u32::min, cfg.step_wait) {
                Ok(agreed) => {
                    step = agreed;
                    report.sums.truncate(step as usize);
                    dirty = false;
                }
                // A second fault landed during the agreement itself:
                // stay dirty and re-enter the repair loop.
                Err(e)
                    if matches!(
                        e.class,
                        ErrClass::ProcFailed | ErrClass::ProcTerminated | ErrClass::Timeout
                    ) => {}
                Err(e) => panic!("unrecoverable agreement error: {e}"),
            }
            continue;
        }
        match ring_fold(&comm, step_tag(step), 1, |a, b| a + b, cfg.step_wait) {
            Ok(sum) => {
                debug_assert_eq!(sum, comm.size(), "each member contributes exactly 1");
                report.sums.push(sum);
                step += 1;
                report.steps_done = step;
                on_step(step);
            }
            Err(e)
                if matches!(
                    e.class,
                    ErrClass::ProcFailed | ErrClass::ProcTerminated | ErrClass::Timeout
                ) =>
            {
                report.step_faults += 1;
                dirty = true;
            }
            Err(e) => panic!("unrecoverable step error: {e}"),
        }
    }
    report.final_size = comm.size();
    // Teardown is deliberately local: ranks may have observed faults
    // asymmetrically, and one rank freeing while another abandons would
    // strand the collective destruct.
    comm.abandon();
    session.finalize().expect("finalize");
    RankOutcome::Survivor(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prrte::{JobSpec, Launcher, ProcCtx};
    use simnet::SimTestbed;
    use std::sync::mpsc;

    #[test]
    fn quiet_run_completes_every_step_at_full_width() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let cfg = RecoverConfig::small();
        let run = {
            let cfg = cfg.clone();
            move |ctx: ProcCtx| run_rank(&ctx, &cfg)
        };
        let out = launcher.spawn(JobSpec::new(4), run).join().unwrap();
        for outcome in &out {
            let r = outcome.survivor().expect("no faults, everyone survives");
            assert_eq!(r.steps_done, cfg.steps);
            assert_eq!(r.repairs, 0);
            assert_eq!(r.final_size, 4);
            assert_eq!(r.sums, vec![4u32; cfg.steps as usize]);
        }
    }

    #[test]
    fn killed_rank_is_removed_and_survivors_recover() {
        let launcher = Launcher::new(SimTestbed::tiny(2, 2));
        let universe = launcher.universe().clone();
        // Fast typed Timeout verdicts while epochs disagree mid-repair.
        universe.set_group_timeout(Duration::from_secs(2));
        let cfg = RecoverConfig {
            steps: 6,
            step_wait: Duration::from_secs(2),
            repair_budget: Duration::from_secs(30),
        };
        let (ack_tx, ack_rx) = mpsc::channel::<(u32, u32)>();
        let run = {
            let cfg = cfg.clone();
            move |ctx: ProcCtx| {
                let tx = ack_tx.clone();
                let rank = ctx.rank();
                run_rank_with_progress(&ctx, &cfg, |step| {
                    let _ = tx.send((rank, step));
                })
            }
        };
        let handle = launcher.spawn(JobSpec::new(4), run);
        let victim = pmix::ProcId::new(handle.nspace(), 3);
        // Wait until every rank has completed step 1, then kill rank 3.
        let mut done_step1 = std::collections::HashSet::new();
        while done_step1.len() < 4 {
            let (rank, step) = ack_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("ranks make progress");
            if step >= 1 {
                done_step1.insert(rank);
            }
        }
        universe.kill_proc(&victim).expect("kill");
        let out = handle.join().unwrap();
        for (rank, outcome) in out.iter().enumerate() {
            if rank == 3 {
                assert!(
                    outcome.survivor().is_none(),
                    "the victim must exit Removed, got {outcome:?}"
                );
            } else {
                let r = outcome.survivor().expect("survivors finish");
                assert_eq!(r.steps_done, cfg.steps);
                assert!(r.repairs >= 1, "a kill forces at least one repair");
                assert_eq!(r.final_size, 3);
                assert_eq!(
                    r.sums.last(),
                    Some(&3),
                    "post-repair steps run at the shrunk width"
                );
            }
        }
    }
}
