//! # apps — the paper's evaluation workloads
//!
//! Faithful re-creations of the benchmarks and the application used in the
//! paper's Section IV:
//!
//! * [`osu`] — the OSU microbenchmarks as modified by the authors:
//!   `osu_init` (startup time for `MPI_Init` vs. the
//!   `MPI_Session_init` → `MPI_Group_from_session_pset` →
//!   `MPI_Comm_create_from_group` sequence, with the per-phase breakdown
//!   quoted in §IV-C1), `osu_latency` and `osu_mbw_mr` (with the
//!   barrier-before-timing-loop structure whose interaction with the exCID
//!   handshake produces Fig. 5c, and the `presync` fix);
//! * [`hpcc`] — the HPC Challenge 8-byte random- and natural-order ring
//!   latency test, with the sessions variant creating its own session
//!   *inside* the bandwidth/latency routine exactly as the authors
//!   modified `main_bench_lat_bw` (§IV-D);
//! * [`mesh2`] — a miniature of the LANL 2MESH multi-physics application:
//!   an MPI-everywhere library (L0) interleaved with an MPI+threads
//!   library (L1) whose quiescence runs through QUO (§IV-E);
//! * [`recover`] — the checkpoint-free fault-recovery loop (DESIGN.md
//!   §15): a ring allreduce with bounded typed waits that repairs its
//!   communicator through injected kills via the survivors pset.

pub mod hpcc;
pub mod mesh2;
pub mod osu;
pub mod recover;

use serde::{Deserialize, Serialize};

/// Which initialization path a workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitMode {
    /// Legacy `MPI_Init` (World Process Model).
    Wpm,
    /// The Sessions sequence of the paper's Figure 1.
    Sessions,
    /// The Figure-1 sequence with `init_mode=lazy`: fence-free session
    /// init, hashed exCIDs, peers resolved on first contact (DESIGN.md
    /// §14).
    Lazy,
}

impl InitMode {
    /// Parse a CLI word.
    pub fn parse(s: &str) -> Option<InitMode> {
        match s {
            "wpm" | "init" | "baseline" => Some(InitMode::Wpm),
            "sessions" | "session" => Some(InitMode::Sessions),
            "lazy" | "sessions-lazy" => Some(InitMode::Lazy),
            _ => None,
        }
    }

    /// The session-init info object for this mode (`None` for WPM).
    pub fn session_info(self) -> mpi_sessions::Info {
        let info = mpi_sessions::Info::new();
        if self == InitMode::Lazy {
            info.set(mpi_sessions::info::keys::INIT_MODE, "lazy");
        }
        info
    }
}

impl std::fmt::Display for InitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InitMode::Wpm => write!(f, "MPI_Init"),
            InitMode::Sessions => write!(f, "MPI_Session_init"),
            InitMode::Lazy => write!(f, "MPI_Session_init(lazy)"),
        }
    }
}

/// Tiny CLI helper: read `--key value` style options.
pub fn cli_opt(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Tiny CLI helper: presence of a flag.
pub fn cli_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_mode_parse() {
        assert_eq!(InitMode::parse("wpm"), Some(InitMode::Wpm));
        assert_eq!(InitMode::parse("sessions"), Some(InitMode::Sessions));
        assert_eq!(InitMode::parse("junk"), None);
    }

    #[test]
    fn cli_helpers() {
        let args: Vec<String> =
            ["--nodes", "4", "--presync"].iter().map(|s| s.to_string()).collect();
        assert_eq!(cli_opt(&args, "--nodes").as_deref(), Some("4"));
        assert_eq!(cli_opt(&args, "--ppn"), None);
        assert!(cli_flag(&args, "--presync"));
        assert!(!cli_flag(&args, "--quiet"));
    }
}
