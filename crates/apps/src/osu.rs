//! OSU-style microbenchmarks (init, latency, multiple bandwidth/message
//! rate), as modified by the paper's authors for MPI Sessions.

use crate::InitMode;
use mpi_sessions::{coll, Comm, ErrHandler, Session, ThreadLevel};
use prrte::{JobSpec, Launcher, ProcCtx};
use serde::{Deserialize, Serialize};
use simnet::SimTestbed;
use std::time::Instant;

/// One process's startup timing (the `osu_init` measurement plus the
/// per-phase breakdown discussed in §IV-C1).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct InitTiming {
    /// End-to-end initialization time in seconds.
    pub total_s: f64,
    /// Sessions only: time inside `MPI_Session_init` (MPI resource init).
    pub session_init_s: f64,
    /// Sessions only: time inside `MPI_Group_from_session_pset`.
    pub group_from_pset_s: f64,
    /// Sessions only: time inside `MPI_Comm_create_from_group`.
    pub comm_create_s: f64,
}

/// Aggregate of per-rank init timings for one job launch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct InitResult {
    /// Number of processes.
    pub np: u32,
    /// Slowest rank (what a user perceives as startup time).
    pub max: InitTiming,
    /// Mean across ranks.
    pub mean: InitTiming,
}

/// Launch a fresh job on `testbed` and measure initialization via `mode`.
///
/// Every call boots a fresh DVM + job, mirroring one `prun ./osu_init`
/// invocation.
pub fn osu_init(testbed: SimTestbed, np: u32, mode: InitMode) -> InitResult {
    osu_init_with_metrics(testbed, np, mode).0
}

/// [`osu_init`] plus the run's full observability export (the fabric-wide
/// obs registry as JSON: per-process `session`/`instance` timing
/// histograms, PMIx stage counters, PML handshake counters, fabric
/// traffic). The registry dies with the run's fabric, so it must be
/// exported here, before the launcher is dropped.
pub fn osu_init_with_metrics(
    testbed: SimTestbed,
    np: u32,
    mode: InitMode,
) -> (InitResult, serde_json::Value) {
    let (result, metrics, _) = osu_init_traced(testbed, np, mode, false);
    (result, metrics)
}

/// [`osu_init_with_metrics`] plus (when `want_trace`) the run's analyzed
/// span-DAG trace report (`obs::analyze`): the global causal trace of the
/// launch — PRRTE fan-out, PMIx group-construction stages, PGCID
/// round-trip, session init split — with its critical path. `Value::Null`
/// when `want_trace` is false, so untraced runs pay nothing.
pub fn osu_init_traced(
    testbed: SimTestbed,
    np: u32,
    mode: InitMode,
    want_trace: bool,
) -> (InitResult, serde_json::Value, serde_json::Value) {
    let launcher = Launcher::new(testbed);
    let timings = launcher
        .spawn(JobSpec::new(np), move |ctx| match mode {
            InitMode::Wpm => {
                let t0 = Instant::now();
                let world = mpi_sessions::world::init(&ctx).expect("MPI_Init");
                let total = t0.elapsed();
                world.finalize().expect("MPI_Finalize");
                InitTiming { total_s: total.as_secs_f64(), ..Default::default() }
            }
            InitMode::Sessions | InitMode::Lazy => {
                let t0 = Instant::now();
                let session =
                    Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &mode.session_info())
                        .expect("MPI_Session_init");
                let t1 = Instant::now();
                let group = session
                    .group_from_pset(mpi_sessions::session::PSET_WORLD)
                    .expect("MPI_Group_from_session_pset");
                let t2 = Instant::now();
                let comm = Comm::create_from_group(&group, "osu_init")
                    .expect("MPI_Comm_create_from_group");
                let t3 = Instant::now();
                comm.free().expect("MPI_Comm_free");
                session.finalize().expect("MPI_Session_finalize");
                InitTiming {
                    total_s: (t3 - t0).as_secs_f64(),
                    session_init_s: (t1 - t0).as_secs_f64(),
                    group_from_pset_s: (t2 - t1).as_secs_f64(),
                    comm_create_s: (t3 - t2).as_secs_f64(),
                }
            }
        })
        .join()
        .expect("osu_init job");
    let registry = launcher.universe().fabric().obs();
    let metrics = registry.export();
    let trace = if want_trace {
        obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped())
    } else {
        serde_json::Value::Null
    };
    (summarize(np, &timings), metrics, trace)
}

fn summarize(np: u32, timings: &[InitTiming]) -> InitResult {
    let n = timings.len().max(1) as f64;
    let mut max = InitTiming::default();
    let mut mean = InitTiming::default();
    for t in timings {
        if t.total_s > max.total_s {
            max = *t;
        }
        mean.total_s += t.total_s / n;
        mean.session_init_s += t.session_init_s / n;
        mean.group_from_pset_s += t.group_from_pset_s / n;
        mean.comm_create_s += t.comm_create_s / n;
    }
    InitResult { np, max, mean }
}

/// Build the benchmark communicator for `mode` inside a running rank.
pub fn bench_comm(ctx: &ProcCtx, mode: InitMode, tag: &str) -> (Option<Session>, Comm) {
    match mode {
        InitMode::Wpm => {
            let world = mpi_sessions::world::init(ctx).expect("MPI_Init");
            // Hand out a dup so the caller owns an independent handle; keep
            // the world alive by leaking it into the comm's lifetime.
            // Simplest faithful shape: use comm_world duplicated by
            // consensus (what the unmodified benchmarks use).
            let comm = world.comm().dup_consensus().expect("dup");
            // The World object must outlive the benchmark; box and forget.
            std::mem::forget(world);
            (None, comm)
        }
        InitMode::Sessions | InitMode::Lazy => {
            let session =
                Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &mode.session_info())
                    .expect("session init");
            let group = session
                .group_from_pset(mpi_sessions::session::PSET_WORLD)
                .expect("group");
            let comm = Comm::create_from_group(&group, tag).expect("comm");
            (Some(session), comm)
        }
    }
}

/// One `osu_latency` sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencySample {
    /// Message size in bytes.
    pub size: usize,
    /// Half round-trip latency in microseconds.
    pub usec: f64,
}

/// Ping-pong latency between comm ranks 0 and 1 (`osu_latency` core loop).
/// Call from every rank; ranks other than 0/1 idle. Returns samples on
/// rank 0, empty elsewhere.
pub fn osu_latency(
    comm: &Comm,
    sizes: &[usize],
    warmup: usize,
    iters: usize,
) -> Vec<LatencySample> {
    let me = comm.rank();
    let mut out = Vec::new();
    for &size in sizes {
        let payload = vec![0x42u8; size];
        if me == 0 {
            for _ in 0..warmup {
                comm.send(1, 1, &payload).unwrap();
                let _ = comm.recv(1, 1).unwrap();
            }
            let t0 = Instant::now();
            for _ in 0..iters {
                comm.send(1, 1, &payload).unwrap();
                let _ = comm.recv(1, 1).unwrap();
            }
            let elapsed = t0.elapsed();
            out.push(LatencySample {
                size,
                usec: elapsed.as_secs_f64() * 1e6 / (2.0 * iters as f64),
            });
        } else if me == 1 {
            for _ in 0..(warmup + iters) {
                let _ = comm.recv(0, 1).unwrap();
                comm.send(0, 1, &payload).unwrap();
            }
        }
        coll::barrier(comm).unwrap();
    }
    out
}

/// One `osu_mbw_mr` sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MbwSample {
    /// Message size in bytes.
    pub size: usize,
    /// Aggregate bandwidth in MB/s.
    pub mb_per_s: f64,
    /// Aggregate message rate in messages/s.
    pub msg_per_s: f64,
}

/// The `osu_mbw_mr` core: the first half of the ranks send a window of
/// messages to their pair in the second half, which ACKs each window.
///
/// Faithfully reproduces the structure the paper discusses:
/// an `MPI_Barrier` precedes the timing loop. With one pair that barrier
/// completes the exCID→local-CID switch before timing; with many pairs it
/// does not, and early in-loop sends still carry the extended header
/// (Fig. 5c). `presync` adds the per-pair sendrecv the authors used to
/// equalize the two init modes.
pub fn osu_mbw_mr(
    comm: &Comm,
    sizes: &[usize],
    window: usize,
    warmup: usize,
    iters: usize,
    presync: bool,
) -> Vec<MbwSample> {
    let n = comm.size();
    assert!(n >= 2 && n.is_multiple_of(2), "osu_mbw_mr needs an even process count");
    let pairs = n / 2;
    let me = comm.rank();
    let sender = me < pairs;
    let peer = if sender { me + pairs } else { me - pairs };
    let mut out = Vec::new();

    if presync {
        // Per-pair synchronization that forces the first-message handshake
        // to finish before any timing.
        let _ = comm.sendrecv(peer, 900, b"sync", peer as i32, 900).unwrap();
    }

    for &size in sizes {
        let payload = vec![0xa5u8; size];
        // The benchmark's structure: a barrier, then the timing loop.
        coll::barrier(comm).unwrap();
        let t0 = Instant::now();
        for it in 0..(warmup + iters) {
            let timed_start = it == warmup;
            if timed_start {
                // restart the clock after warmup
            }
            if sender {
                let mut reqs = Vec::with_capacity(window);
                for _ in 0..window {
                    reqs.push(comm.isend(peer, 2, &payload).unwrap());
                }
                mpi_sessions::Request::wait_all(reqs).unwrap();
                let _ = comm.recv(peer as i32, 3).unwrap();
            } else {
                let mut reqs = Vec::with_capacity(window);
                for _ in 0..window {
                    reqs.push(comm.irecv(peer as i32, 2).unwrap());
                }
                for r in reqs {
                    r.wait().unwrap();
                }
                comm.send(peer, 3, b"ack").unwrap();
            }
        }
        let elapsed = t0.elapsed();
        coll::barrier(comm).unwrap();
        if me == 0 {
            let total_iters = warmup + iters;
            let msgs = (pairs as f64) * (total_iters * window) as f64;
            let secs = elapsed.as_secs_f64();
            out.push(MbwSample {
                size,
                mb_per_s: msgs * size as f64 / secs / 1e6,
                msg_per_s: msgs / secs,
            });
        }
    }
    out
}

/// Standard OSU size sweep: powers of two from 1 byte to `max`.
pub fn size_sweep(max: usize) -> Vec<usize> {
    let mut sizes = vec![1usize];
    while *sizes.last().unwrap() < max {
        sizes.push(sizes.last().unwrap() * 2);
    }
    sizes
}

/// Iteration count appropriate for a message size (OSU halves iterations
/// for large messages).
pub fn iters_for(size: usize, base: usize) -> usize {
    if size >= 1 << 20 {
        (base / 10).max(2)
    } else if size >= 1 << 16 {
        (base / 4).max(4)
    } else {
        base
    }
}

/// Default latency time budget knobs for the simulated testbed.
pub const DEFAULT_WARMUP: usize = 10;
/// Default timed iterations.
pub const DEFAULT_ITERS: usize = 100;

#[derive(Debug, Clone, Serialize, Deserialize)]
/// Output record of a latency/mbw run (for the figure harness).
pub struct RunRecord {
    /// Which initialization path.
    pub mode: InitMode,
    /// Process count.
    pub np: u32,
    /// Latency samples (when a latency run).
    pub latency: Vec<LatencySample>,
    /// Bandwidth/message-rate samples (when an mbw run).
    pub mbw: Vec<MbwSample>,
}

/// Convenience: full latency run on a fresh 2-process on-node job.
pub fn run_latency_job(
    testbed: SimTestbed,
    mode: InitMode,
    sizes: Vec<usize>,
    warmup: usize,
    iters: usize,
) -> Vec<LatencySample> {
    let launcher = Launcher::new(testbed);
    let mut results = launcher
        .spawn(JobSpec::new(2), move |ctx| {
            let (session, comm) = bench_comm(&ctx, mode, "osu_latency");
            let samples = osu_latency(&comm, &sizes, warmup, iters);
            comm.free().unwrap();
            if let Some(s) = session {
                s.finalize().unwrap();
            }
            samples
        })
        .join()
        .expect("latency job");
    results.swap_remove(0)
}

/// Convenience: full mbw_mr run on a fresh on-node job of `np` processes.
#[allow(clippy::too_many_arguments)]
pub fn run_mbw_job(
    testbed: SimTestbed,
    mode: InitMode,
    np: u32,
    sizes: Vec<usize>,
    window: usize,
    warmup: usize,
    iters: usize,
    presync: bool,
) -> Vec<MbwSample> {
    run_mbw_job_with_metrics(testbed, mode, np, sizes, window, warmup, iters, presync).0
}

/// [`run_mbw_job`] plus the run's observability export (PML
/// eager/extended-header split, fabric on-node vs inter-node traffic —
/// the counters behind the Fig. 5c switchover story).
#[allow(clippy::too_many_arguments)]
pub fn run_mbw_job_with_metrics(
    testbed: SimTestbed,
    mode: InitMode,
    np: u32,
    sizes: Vec<usize>,
    window: usize,
    warmup: usize,
    iters: usize,
    presync: bool,
) -> (Vec<MbwSample>, serde_json::Value) {
    let (samples, metrics, _) =
        run_mbw_job_traced(testbed, mode, np, sizes, window, warmup, iters, presync, false);
    (samples, metrics)
}

/// [`run_mbw_job_with_metrics`] plus (when `want_trace`) the analyzed
/// span-DAG trace: the exCID handshake spans and per-pair eager aggregates
/// behind the Fig. 5c switchover story. `Value::Null` when `want_trace`
/// is false.
#[allow(clippy::too_many_arguments)]
pub fn run_mbw_job_traced(
    testbed: SimTestbed,
    mode: InitMode,
    np: u32,
    sizes: Vec<usize>,
    window: usize,
    warmup: usize,
    iters: usize,
    presync: bool,
    want_trace: bool,
) -> (Vec<MbwSample>, serde_json::Value, serde_json::Value) {
    let launcher = Launcher::new(testbed);
    let mut results = launcher
        .spawn(JobSpec::new(np), move |ctx| {
            let (session, comm) = bench_comm(&ctx, mode, "osu_mbw_mr");
            let samples = osu_mbw_mr(&comm, &sizes, window, warmup, iters, presync);
            comm.free().unwrap();
            if let Some(s) = session {
                s.finalize().unwrap();
            }
            samples
        })
        .join()
        .expect("mbw job");
    let registry = launcher.universe().fabric().obs();
    let metrics = registry.export();
    let trace = if want_trace {
        obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped())
    } else {
        serde_json::Value::Null
    };
    (results.swap_remove(0), metrics, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_is_powers_of_two() {
        assert_eq!(size_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(size_sweep(1)[0], 1);
    }

    #[test]
    fn iters_scale_down_for_large_sizes() {
        assert_eq!(iters_for(64, 100), 100);
        assert_eq!(iters_for(1 << 16, 100), 25);
        assert_eq!(iters_for(1 << 20, 100), 10);
    }

    #[test]
    fn osu_init_both_modes_report_positive_times() {
        let wpm = osu_init(SimTestbed::tiny(2, 2), 4, InitMode::Wpm);
        assert!(wpm.max.total_s > 0.0);
        assert_eq!(wpm.max.session_init_s, 0.0);
        let sess = osu_init(SimTestbed::tiny(2, 2), 4, InitMode::Sessions);
        assert!(sess.max.total_s > 0.0);
        assert!(sess.max.comm_create_s > 0.0);
        // Breakdown sums to the total (within float noise).
        let parts =
            sess.max.session_init_s + sess.max.group_from_pset_s + sess.max.comm_create_s;
        assert!((parts - sess.max.total_s).abs() < 1e-6);
    }

    #[test]
    fn latency_run_produces_monotone_sizes() {
        let samples = run_latency_job(
            SimTestbed::tiny(1, 2),
            InitMode::Sessions,
            vec![1, 64, 1024],
            2,
            10,
        );
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|s| s.usec > 0.0));
    }

    #[test]
    fn mbw_run_counts_all_pairs() {
        let samples = run_mbw_job(
            SimTestbed::tiny(1, 4),
            InitMode::Wpm,
            4,
            vec![64],
            8,
            1,
            5,
            false,
        );
        assert_eq!(samples.len(), 1);
        assert!(samples[0].msg_per_s > 0.0);
        assert!(samples[0].mb_per_s > 0.0);
    }

    #[test]
    fn mbw_presync_runs_with_sessions() {
        let samples = run_mbw_job(
            SimTestbed::tiny(1, 4),
            InitMode::Sessions,
            4,
            vec![16],
            4,
            1,
            5,
            true,
        );
        assert_eq!(samples.len(), 1);
    }
}

/// One `osu_bw` (unidirectional bandwidth) sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BwSample {
    /// Message size in bytes.
    pub size: usize,
    /// Bandwidth in MB/s.
    pub mb_per_s: f64,
}

/// The `osu_bw` core loop: rank 0 streams a window of messages to rank 1,
/// which ACKs the window; run between exactly two ranks.
pub fn osu_bw(
    comm: &Comm,
    sizes: &[usize],
    window: usize,
    warmup: usize,
    iters: usize,
) -> Vec<BwSample> {
    assert!(comm.size() >= 2, "osu_bw needs two processes");
    let me = comm.rank();
    let mut out = Vec::new();
    for &size in sizes {
        let payload = vec![0x3cu8; size];
        coll::barrier(comm).unwrap();
        let t0 = Instant::now();
        for _ in 0..(warmup + iters) {
            if me == 0 {
                let mut reqs = Vec::with_capacity(window);
                for _ in 0..window {
                    reqs.push(comm.isend(1, 4, &payload).unwrap());
                }
                mpi_sessions::Request::wait_all(reqs).unwrap();
                let _ = comm.recv(1, 5).unwrap();
            } else if me == 1 {
                let mut reqs = Vec::with_capacity(window);
                for _ in 0..window {
                    reqs.push(comm.irecv(0, 4).unwrap());
                }
                for r in reqs {
                    r.wait().unwrap();
                }
                comm.send(0, 5, b"ok").unwrap();
            }
        }
        let elapsed = t0.elapsed();
        coll::barrier(comm).unwrap();
        if me == 0 {
            let bytes = ((warmup + iters) * window * size) as f64;
            out.push(BwSample { size, mb_per_s: bytes / elapsed.as_secs_f64() / 1e6 });
        }
    }
    out
}

#[cfg(test)]
mod bw_tests {
    use super::*;
    use prrte::{JobSpec, Launcher};

    #[test]
    fn osu_bw_reports_increasing_bandwidth() {
        let launcher = Launcher::new(SimTestbed::tiny(1, 2));
        let out = launcher
            .spawn(JobSpec::new(2), |ctx| {
                let (session, comm) = bench_comm(&ctx, InitMode::Sessions, "bw");
                let samples = osu_bw(&comm, &[64, 4096], 8, 1, 5);
                comm.free().unwrap();
                if let Some(s) = session {
                    s.finalize().unwrap();
                }
                samples
            })
            .join()
            .unwrap();
        let s = &out[0];
        assert_eq!(s.len(), 2);
        assert!(s[1].mb_per_s > s[0].mb_per_s, "larger messages amortize overheads");
    }
}
