//! mini-2MESH: a miniature of the LANL multi-physics application used in
//! the paper's §IV-E.
//!
//! 2MESH couples two libraries: **L0** simulates one physics MPI-everywhere
//! (every process computes; halo exchange + reductions), interleaved with
//! **L1**, an MPI+OpenMP physics on a separate mesh (a subset of processes
//! host threads while the rest quiesce). Task schedules are reconfigured
//! between phases through QUO; the quiescence primitive is `QUO_barrier`.
//!
//! Here L0 is a 1-D three-point stencil with halo sendrecv and a residual
//! allreduce; L1 elects `workers_per_node` thread hosts via
//! `QUO_auto_distrib`, each spinning up `threads_per_worker` compute
//! threads, while non-workers sit in `QUO_barrier`. The Baseline/Sessions
//! switch is exactly the paper's: the QUO backend (native shared-memory
//! quiescence vs. sessions-aware ibarrier+nanosleep).

use mpi_sessions::{coll, Comm, ReduceOp};
use prrte::{JobSpec, Launcher, ProcCtx};
use quo::{Quo, QuoBackend};
use serde::{Deserialize, Serialize};
use simnet::SimTestbed;
use std::time::{Duration, Instant};

/// Problem configuration (the paper's P1/P2/P3 are instances of this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mesh2Config {
    /// Cells per process in the L0 strip.
    pub cells_per_rank: usize,
    /// L0 stencil iterations per phase.
    pub l0_iters: usize,
    /// L1 thread-compute units per phase.
    pub l1_iters: usize,
    /// Number of L0/L1 phase pairs.
    pub phases: usize,
    /// Thread hosts per node during L1.
    pub workers_per_node: u32,
    /// Threads each worker spawns during L1.
    pub threads_per_worker: u32,
}

impl Mesh2Config {
    /// A problem sized for CI-scale runs.
    pub fn small() -> Self {
        Self {
            cells_per_rank: 2048,
            l0_iters: 10,
            l1_iters: 4,
            phases: 3,
            workers_per_node: 1,
            threads_per_worker: 4,
        }
    }
}

/// Per-rank outcome of a mini-2MESH run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mesh2Result {
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Final residual (identical on every rank — correctness check).
    pub residual: f64,
}

/// L0: MPI-everywhere stencil phase over `comm`.
fn l0_phase(comm: &Comm, field: &mut [f64], iters: usize) -> f64 {
    let n = comm.size();
    let me = comm.rank();
    let left = if me == 0 { None } else { Some(me - 1) };
    let right = if me + 1 == n { None } else { Some(me + 1) };
    let mut residual = 0.0;
    let len = field.len();
    for _ in 0..iters {
        // Halo exchange (two independent sendrecvs; boundaries reflect).
        let left_halo = if let Some(l) = left {
            let (data, _) = comm
                .sendrecv(l, 21, &field[0].to_le_bytes(), l as i32, 22)
                .unwrap();
            f64::from_le_bytes(data[..8].try_into().unwrap())
        } else {
            field[0]
        };
        let right_halo = if let Some(r) = right {
            let (data, _) = comm
                .sendrecv(r, 22, &field[len - 1].to_le_bytes(), r as i32, 21)
                .unwrap();
            f64::from_le_bytes(data[..8].try_into().unwrap())
        } else {
            field[len - 1]
        };
        // 3-point Jacobi smoothing sweep.
        let mut next = vec![0.0f64; len];
        let mut local_res = 0.0f64;
        for i in 0..len {
            let l = if i == 0 { left_halo } else { field[i - 1] };
            let r = if i + 1 == len { right_halo } else { field[i + 1] };
            next[i] = 0.5 * field[i] + 0.25 * (l + r);
            local_res += (next[i] - field[i]).abs();
        }
        field.copy_from_slice(&next);
        // Global residual.
        residual = coll::allreduce_t(comm, ReduceOp::Sum, &[local_res]).unwrap()[0];
    }
    residual
}

/// L1: MPI+threads phase. Workers compute with `threads` threads; everyone
/// meets in `QUO_barrier` at phase boundaries (non-workers quiesce there).
fn l1_phase(quo: &Quo, cfg: &Mesh2Config) -> f64 {
    let mut local = 0.0f64;
    if quo.auto_distrib(cfg.workers_per_node) {
        quo.bind_push("OBJ_SOCKET");
        let mut handles = Vec::new();
        for t in 0..cfg.threads_per_worker {
            let work_units = cfg.l1_iters;
            handles.push(std::thread::spawn(move || {
                // CPU-ish kernel per thread (deterministic).
                let mut acc = 0.0f64;
                for u in 0..work_units {
                    let mut x = 1.0f64 + t as f64 + u as f64;
                    for _ in 0..20_000 {
                        x = (x * 1.000001).sqrt() + 0.5;
                    }
                    acc += x;
                }
                acc
            }));
        }
        for h in handles {
            local += h.join().expect("L1 worker thread");
        }
        quo.bind_pop();
    }
    // Quiesce: workers and non-workers re-join here.
    quo.barrier().expect("QUO_barrier");
    local
}

/// Run the coupled application on an already-initialized rank.
///
/// The application initializes MPI via `MPI_Init_thread` (WPM); only the
/// QUO layer differs between Baseline (native) and Sessions, exactly like
/// the paper's two 2MESH executables.
pub fn mesh2_rank_body(ctx: &ProcCtx, cfg: &Mesh2Config, backend: QuoBackend) -> Mesh2Result {
    let world = mpi_sessions::world::init_thread(ctx, mpi_sessions::ThreadLevel::Funneled)
        .expect("MPI_Init_thread");
    let quo = Quo::create(ctx, backend).expect("QUO_create");
    let comm = world.comm();

    let mut field: Vec<f64> = (0..cfg.cells_per_rank)
        .map(|i| ((ctx.rank() as usize * cfg.cells_per_rank + i) % 17) as f64)
        .collect();

    let t0 = Instant::now();
    let mut residual = 0.0;
    for _phase in 0..cfg.phases {
        residual = l0_phase(comm, &mut field, cfg.l0_iters);
        let _ = l1_phase(&quo, cfg);
    }
    coll::barrier(comm).unwrap();
    let elapsed = t0.elapsed();

    quo.free().expect("QUO_free");
    world.finalize().expect("MPI_Finalize");
    Mesh2Result { elapsed_s: elapsed.as_secs_f64(), residual }
}

/// Launch a full mini-2MESH job; returns the slowest rank's time and the
/// agreed residual.
pub fn run_mesh2(
    testbed: SimTestbed,
    np: u32,
    cfg: Mesh2Config,
    backend: QuoBackend,
) -> Mesh2Result {
    let launcher = Launcher::new(testbed);
    let results = launcher
        .spawn(JobSpec::new(np), move |ctx| mesh2_rank_body(&ctx, &cfg, backend))
        .join()
        .expect("mesh2 job");
    let residual = results[0].residual;
    for r in &results {
        assert!(
            (r.residual - residual).abs() <= residual.abs() * 1e-12 + 1e-12,
            "ranks disagree on the residual"
        );
    }
    let slowest = results
        .iter()
        .map(|r| r.elapsed_s)
        .fold(0.0f64, f64::max);
    Mesh2Result { elapsed_s: slowest, residual }
}

/// Repeat a run `reps` times and keep the median wall time (the paper
/// reports averaged wall-clock times; the median is steadier on a noisy
/// shared host).
pub fn run_mesh2_median(
    testbed: SimTestbed,
    np: u32,
    cfg: Mesh2Config,
    backend: QuoBackend,
    reps: usize,
) -> Mesh2Result {
    let mut runs: Vec<Mesh2Result> = (0..reps.max(1))
        .map(|_| run_mesh2(testbed.clone(), np, cfg.clone(), backend))
        .collect();
    runs.sort_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s));
    runs[runs.len() / 2]
}

/// Pause between phases used by some tests to surface quiescence cost.
pub const PHASE_GAP: Duration = Duration::from_millis(1);

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Mesh2Config {
        Mesh2Config {
            cells_per_rank: 64,
            l0_iters: 3,
            l1_iters: 1,
            phases: 2,
            workers_per_node: 1,
            threads_per_worker: 2,
        }
    }

    #[test]
    fn baseline_and_sessions_agree_on_physics() {
        let base = run_mesh2(SimTestbed::tiny(2, 2), 4, tiny_cfg(), QuoBackend::Native);
        let sess = run_mesh2(SimTestbed::tiny(2, 2), 4, tiny_cfg(), QuoBackend::Sessions);
        assert!(base.elapsed_s > 0.0 && sess.elapsed_s > 0.0);
        // The physics must not depend on the quiescence mechanism.
        assert!((base.residual - sess.residual).abs() < 1e-9);
    }

    #[test]
    fn single_rank_run_works() {
        let r = run_mesh2(SimTestbed::tiny(1, 1), 1, tiny_cfg(), QuoBackend::Native);
        assert!(r.residual.is_finite());
    }

    #[test]
    fn median_of_reps_is_stable() {
        let r = run_mesh2_median(SimTestbed::tiny(1, 2), 2, tiny_cfg(), QuoBackend::Native, 3);
        assert!(r.elapsed_s > 0.0);
    }
}
