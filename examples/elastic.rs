//! Elastic session: follow a runtime-owned process set through churn.
//!
//! The Sessions model's core claim is that process sets belong to the
//! runtime, not the application — so membership can change while the job
//! runs. This example drives the full lifecycle: launch 4 ranks on a pset,
//! grow to 8, kill one rank (failure-driven shrink), retire one gracefully
//! (runtime-driven shrink), then delete the pset. Every surviving rank
//! follows along with `ElasticComm`: each pset epoch yields a freshly
//! derived group and a rebuilt communicator, proven live by a collective.
//!
//! Run with: `cargo run --release --example elastic`

use mpi_sessions_repro::mpi::{
    coll, ElasticComm, ErrHandler, Info, Rebuild, ReduceOp, Session, ThreadLevel,
};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use std::sync::mpsc;
use std::time::Duration;

const PSET: &str = "app://elastic";
const STEP: Duration = Duration::from_secs(20);

fn main() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 4));
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let spec = JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]);
    let handle = launcher.spawn_named("elastic", spec, move |ctx| {
        let session =
            Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .expect("session init");
        // Subscribe to the pset, build the first communicator at the
        // current epoch (late joiners see the epoch they were grown into).
        let mut ec = ElasticComm::establish(&session, PSET, STEP).expect("establish");
        let mut epochs = 0u32;
        loop {
            // One allreduce per epoch: every member of this epoch is on
            // the rebuilt communicator, or this would hang.
            let comm = ec.comm().expect("member has a communicator");
            let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).expect("allreduce")[0];
            epochs += 1;
            tx.send((ctx.rank(), ec.epoch(), sum)).expect("ack");
            match ec.next_rebuild(STEP) {
                Ok(Rebuild::Rebuilt { .. }) => continue,
                Ok(Rebuild::Retired { epoch }) => {
                    println!("  rank {} left the pset at epoch {epoch}", ctx.rank());
                    break;
                }
                Ok(Rebuild::Deleted { epoch }) => {
                    println!("  rank {} saw the pset deleted at epoch {epoch}", ctx.rank());
                    break;
                }
                Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
            }
        }
        session.finalize().expect("finalize");
        epochs
    });
    let ctl = handle.ctl();

    let settle = |n: u32, epoch: u64, what: &str| {
        for _ in 0..n {
            let (rank, e, s) = rx.recv_timeout(STEP).expect("ack before timeout");
            assert_eq!((e, s), (epoch, n), "rank {rank} settled on the wrong epoch");
        }
        println!("epoch {epoch}: {what} — all {n} members on the rebuilt communicator");
    };

    settle(4, 1, "launch-time pset definition");
    ctl.spawn_ranks(4, Some(PSET));
    settle(8, 2, "grew the job by 4 ranks");
    handle.kill_rank(7);
    settle(7, 3, "rank 7 died; failure bridge shrank the pset");
    ctl.retire_ranks(&[6], Some(PSET)).expect("retire");
    settle(6, 4, "rank 6 retired gracefully");
    launcher.universe().registry().undefine_pset(PSET);
    let out = handle.join().expect("elastic job");

    let obs = launcher.universe().fabric().obs();
    println!(
        "{} rebuilds across {} rank-lifetimes; {} stale handshake-cache entries evicted",
        obs.sum_counters("session", "rebuilds"),
        out.len(),
        obs.sum_counters("pml", "cache_invalidated"),
    );
    assert_eq!(out.len(), 7, "6 survivors + the killed rank's thread");
    println!("elastic OK");
}
