//! Quickstart: the Sessions sequence of the paper's Figure 1, end to end.
//!
//! 1. boot a simulated 2-node cluster ("prte"),
//! 2. launch a 4-process job ("prun"),
//! 3. in each process: `Session::init` → query psets →
//!    `group_from_pset("mpi://world")` → `Comm::create_from_group` →
//!    communicate → tear everything down.
//!
//! Run with: `cargo run --release --example quickstart`

use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;

fn main() {
    // "prte": boot the DVM over a simulated 2-node cluster, 2 slots each.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));

    // "prun -np 4 ./app": every closure invocation is one MPI process.
    let results = launcher
        .spawn(JobSpec::new(4), |ctx| {
            // --- the Figure 1 sequence ---------------------------------
            let session =
                Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                    .expect("MPI_Session_init is local and cannot fail here");

            // Ask the runtime which process sets exist.
            let psets = session.pset_names().expect("query psets");
            if ctx.rank() == 0 {
                println!("runtime offers process sets: {psets:?}");
            }

            // A pset name becomes a group; a group becomes a communicator.
            let group = session.group_from_pset("mpi://world").expect("world pset");
            let comm = Comm::create_from_group(&group, "quickstart").expect("comm");

            // Use it: a ring hop and an allreduce.
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let (from_left, _) = comm
                .sendrecv(right, 0, format!("hi from {}", comm.rank()).as_bytes(), left as i32, 0)
                .expect("ring sendrecv");
            let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[comm.rank() as u64])
                .expect("allreduce")[0];

            // Clean teardown; the session could be re-initialized later.
            comm.free().expect("comm free");
            session.finalize().expect("session finalize");
            (comm_str(&from_left), sum)
        })
        .join()
        .expect("all ranks succeed");

    for (rank, (msg, sum)) in results.iter().enumerate() {
        println!("rank {rank}: left neighbor said {msg:?}; sum of ranks = {sum}");
    }
    assert!(results.iter().all(|(_, s)| *s == 6));
    println!("quickstart OK");
}

fn comm_str(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
