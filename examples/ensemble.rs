//! Ensemble simulation: the ECMWF/IFS motivation from paper §II-A.
//!
//! An ensemble weather code wants to run many perturbed members, each a
//! fresh parallel region, initializing and re-initializing MPI between
//! members. `MPI_Init` cannot do this (once per process, ever);
//! `MPI_Session_init` can — each member is a fork-join parallel region
//! over MPI processes, with full teardown in between.
//!
//! Run with: `cargo run --release --example ensemble`

use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;

/// One ensemble member: a short "forecast" with perturbed initial
/// conditions, run as an isolated MPI parallel region.
fn run_member(ctx: &prrte::ProcCtx, member: u32) -> f64 {
    let session = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
        .expect("session init is repeatable");
    let group = session.group_from_pset("mpi://world").expect("world");
    let comm = Comm::create_from_group(&group, &format!("member-{member}"))
        .expect("member communicator");

    // Perturbed initial state, then a few smoothing steps with halo
    // exchange via the ring.
    let mut state = (ctx.rank() as f64 + 1.0) * (1.0 + member as f64 * 0.01);
    let n = comm.size();
    for _step in 0..5 {
        let right = (comm.rank() + 1) % n;
        let left = (comm.rank() + n - 1) % n;
        let (bytes, _) = comm
            .sendrecv(right, 0, &state.to_le_bytes(), left as i32, 0)
            .expect("halo");
        let neighbor = f64::from_le_bytes(bytes[..8].try_into().expect("f64"));
        state = 0.7 * state + 0.3 * neighbor;
    }
    // Ensemble-member "score": mean state across ranks.
    let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[state]).expect("reduce")[0];

    // Full teardown: the next member starts from a pristine library.
    comm.free().expect("free");
    session.finalize().expect("finalize");
    sum / n as f64
}

fn main() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let members = 6u32;
    let results = launcher
        .spawn(JobSpec::new(4), move |ctx| {
            // Each process participates in every ensemble member, with MPI
            // initialized and finalized `members` times — the exact
            // pattern MPI-3 forbids and Sessions enables.
            let process = mpi_sessions_repro::mpi::instance::MpiProcess::obtain(&ctx);
            let mut scores = Vec::new();
            for m in 0..members {
                scores.push(run_member(&ctx, m));
                assert_eq!(process.open_instances(), 0, "library fully torn down");
            }
            (scores, process.full_cycles())
        })
        .join()
        .expect("ensemble job");

    let (scores, cycles) = &results[0];
    println!("ensemble of {members} members over 4 MPI processes:");
    for (m, s) in scores.iter().enumerate() {
        println!("  member {m}: score {s:.4}");
    }
    println!("library init/finalize cycles per process: {cycles}");
    assert_eq!(*cycles, members as u64);
    // Perturbations must produce distinct members.
    let mut uniq = scores.clone();
    uniq.dedup();
    assert_eq!(uniq.len(), scores.len());
    println!("ensemble OK");
}
