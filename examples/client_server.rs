//! Failure-scope isolation: the client/server scenario of paper §II-C(b).
//!
//! A server pool keeps an *internal* session (its coordination
//! communicator) separate from the resources used to serve clients. When a
//! client process dies, the default MPI-3 behavior would tear down every
//! connected process; with sessions, the failure is contained — the
//! server's internal session keeps working and other clients keep being
//! served.
//!
//! Run with: `cargo run --release --example client_server`

use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use std::time::Duration;

const SERVERS: u32 = 2;
const CLIENTS: u32 = 3; // ranks SERVERS..SERVERS+CLIENTS; the last one dies

fn server_body(ctx: &prrte::ProcCtx) -> u64 {
    let session = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
        .expect("server session");
    let notifier = session.failure_notifier().expect("notifier");

    // Internal coordination: servers-only communicator, isolated from any
    // client-facing resources.
    let world = session.group_from_pset("mpi://world").expect("world");
    let internal_group = world.incl(&(0..SERVERS as usize).collect::<Vec<_>>()).expect("servers");
    let internal = Comm::create_from_group(&internal_group, "server-internal")
        .expect("internal comm");

    // Serve requests from each healthy client over per-client comms.
    let mut served = 0u64;
    for c in 0..CLIENTS - 1 {
        let client_rank = (SERVERS + c) as usize;
        let pair = world.incl(&[0, client_rank]).expect("pair group");
        if pair.rank_of(ctx.proc()).is_some() {
            let conn = Comm::create_from_group(&pair, &format!("conn-{c}")).expect("conn");
            let (req, _) = conn.recv(1, 0).expect("client request");
            conn.send(1, 0, format!("handled:{}", String::from_utf8_lossy(&req)).as_bytes())
                .expect("reply");
            conn.free().expect("free conn");
            served += 1;
        }
    }

    // The doomed client (last rank) dies without ever connecting. Wait for
    // the failure notification...
    let victim = notifier
        .next_timeout(Duration::from_secs(30))
        .expect("failure event for the doomed client");
    assert_eq!(victim.rank(), SERVERS + CLIENTS - 1);

    // ...and demonstrate the server pool is unharmed: internal session
    // still fully functional.
    let health = coll::allreduce_t(&internal, ReduceOp::Sum, &[1u64]).expect("health check")[0];
    assert_eq!(health, SERVERS as u64);

    internal.free().expect("free internal");
    session.finalize().expect("finalize");
    served
}

fn client_body(ctx: &prrte::ProcCtx, idx: u32) -> u64 {
    if idx == CLIENTS - 1 {
        // The doomed client: killed by the harness before connecting.
        // (Short linger: the thread itself exits soon after the kill so the
        // example does not wait on a long sleep.)
        std::thread::sleep(Duration::from_secs(3));
        return 0;
    }
    let session = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
        .expect("client session");
    let world = session.group_from_pset("mpi://world").expect("world");
    let pair = world.incl(&[0, ctx.rank() as usize]).expect("pair");
    let conn = Comm::create_from_group(&pair, &format!("conn-{idx}")).expect("conn");
    conn.send(0, 0, format!("req-from-{idx}").as_bytes()).expect("request");
    let (reply, _) = conn.recv(0, 0).expect("reply");
    assert!(String::from_utf8_lossy(&reply).starts_with("handled:"));
    conn.free().expect("free");
    session.finalize().expect("finalize");
    1
}

fn main() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 3));
    let handle = launcher.spawn(JobSpec::new(SERVERS + CLIENTS), |ctx| {
        if ctx.rank() < SERVERS {
            server_body(&ctx)
        } else {
            client_body(&ctx, ctx.rank() - SERVERS)
        }
    });
    // Let the healthy clients get served, then kill the doomed one.
    std::thread::sleep(Duration::from_millis(800));
    handle.kill_rank(SERVERS + CLIENTS - 1);
    let results = handle.join().expect("job");
    println!("served requests per server: {:?}", &results[..SERVERS as usize]);
    println!("healthy client outcomes: {:?}", &results[SERVERS as usize..]);
    assert_eq!(results[0], (CLIENTS - 1) as u64, "server 0 served every healthy client");
    println!("client_server OK — the client failure did not cascade into the server pool");
}
