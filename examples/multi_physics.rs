//! Coupled multi-physics through QUO: the 2MESH integration of paper §IV-E.
//!
//! The application initializes MPI the classic way (`MPI_Init_thread`);
//! the L1 library's QUO context adopts MPI Sessions *internally*
//! (`QUO_create` opens a session and builds a node communicator from
//! `mpi://shared`) — the application itself is untouched, mirroring the
//! paper's ~20-SLOC integration.
//!
//! Run with: `cargo run --release --example multi_physics`

use mpi_sessions_repro::apps::mesh2::{run_mesh2, Mesh2Config};
use mpi_sessions_repro::quo::QuoBackend;
use mpi_sessions_repro::simnet::SimTestbed;

fn main() {
    let cfg = Mesh2Config {
        cells_per_rank: 2048,
        l0_iters: 8,
        l1_iters: 4,
        phases: 3,
        workers_per_node: 1,
        threads_per_worker: 4,
    };
    let np = 8;
    let testbed = || {
        let mut tb = SimTestbed::trinity(2);
        tb.cluster.slots_per_node = 4;
        tb
    };

    println!("mini-2MESH: {np} MPI processes, L0 (MPI-everywhere) ⟷ L1 (MPI+threads via QUO)");
    let baseline = run_mesh2(testbed(), np, cfg.clone(), QuoBackend::Native);
    println!(
        "  Baseline  (native QUO_barrier)          : {:.4} s  residual {:.6}",
        baseline.elapsed_s, baseline.residual
    );
    let sessions = run_mesh2(testbed(), np, cfg, QuoBackend::Sessions);
    println!(
        "  Sessions  (ibarrier+nanosleep via QUO)  : {:.4} s  residual {:.6}",
        sessions.elapsed_s, sessions.residual
    );
    println!(
        "  normalized execution time: {:.3}",
        sessions.elapsed_s / baseline.elapsed_s
    );
    assert!(
        (baseline.residual - sessions.residual).abs() < 1e-9,
        "quiescence mechanism must not change the physics"
    );
    println!("multi_physics OK");
}
