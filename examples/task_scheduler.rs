//! Task-framework usage: the DASK-MPI motivation from paper §II-A.
//!
//! A scheduler orchestrates many parallel tasks, each wanting "a fresh MPI
//! environment tailored to the task" — a communicator over just the
//! processes assigned to it. With Sessions, each task opens its own
//! session over a runtime-defined process set and tears it down when done;
//! tasks on disjoint process sets run concurrently without sharing any
//! MPI state.
//!
//! Run with: `cargo run --release --example task_scheduler`

use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;

/// The static task table: (task name, pset it runs on, input).
const TASKS: &[(&str, &str, u64)] = &[
    ("preprocess", "task://left", 10),
    ("solve", "task://right", 100),
    ("postprocess", "task://left", 1000),
    ("reduce-all", "mpi://world", 10_000),
];

fn run_task(ctx: &prrte::ProcCtx, name: &str, pset: &str, input: u64) -> Option<u64> {
    let session = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
        .expect("task session");
    // A task only runs on the processes of its pset.
    let members = session.group_from_pset(pset).expect("task pset");
    if members.rank_of(ctx.proc()).is_none() {
        session.finalize().expect("finalize");
        return None;
    }
    let comm = Comm::create_from_group(&members, &format!("task:{name}"))
        .expect("task communicator");
    // The "task": sum input contributions across the task's workers.
    let total = coll::allreduce_t(&comm, ReduceOp::Sum, &[input + comm.rank() as u64])
        .expect("task allreduce")[0];
    comm.free().expect("free");
    session.finalize().expect("finalize");
    Some(total)
}

fn main() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    // The scheduler defines worker pools as process sets at launch
    // (the `prun --pset` analog).
    let spec = JobSpec::new(4)
        .with_pset("task://left", vec![0, 1])
        .with_pset("task://right", vec![2, 3]);

    let results = launcher
        .spawn(spec, |ctx| {
            let mut outputs = Vec::new();
            for (name, pset, input) in TASKS {
                outputs.push(run_task(&ctx, name, pset, *input));
            }
            outputs
        })
        .join()
        .expect("scheduler job");

    println!("task outputs per rank (None = rank not in the task's pool):");
    for (rank, outs) in results.iter().enumerate() {
        println!("  rank {rank}: {outs:?}");
    }
    // Tasks on "task://left" ran on ranks 0,1: sum = (in+0)+(in+1).
    assert_eq!(results[0][0], Some(21));
    assert_eq!(results[1][0], Some(21));
    assert_eq!(results[2][0], None);
    // "solve" on ranks 2,3.
    assert_eq!(results[2][1], Some(201));
    // final task on everyone.
    assert!(results.iter().all(|r| r[3] == Some(4 * 10_000 + 6)));
    println!("task_scheduler OK");
}
