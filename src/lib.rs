//! # mpi-sessions-repro
//!
//! Umbrella crate for the reproduction of *MPI Sessions: Evaluation of an
//! Implementation in Open MPI* (IEEE CLUSTER 2019): re-exports the full
//! simulated middleware stack so examples and downstream users can depend
//! on one crate.
//!
//! Layer map (bottom-up):
//!
//! * [`simnet`] — simulated cluster fabric (nodes, endpoints, cost model);
//! * [`pmix`] — PMIx analog (KV exchange, fences, groups + PGCIDs, events);
//! * [`prrte`] — runtime analog (DVM, launcher, process mapping);
//! * [`mpi`] — the MPI library with the Sessions extensions (the paper's
//!   contribution);
//! * [`quo`] — QUO analog for coupled MPI+threads applications;
//! * [`apps`] — the paper's evaluation workloads;
//! * [`obs`] — cross-cutting observability (metrics, events, causal span
//!   traces + the offline analyzer).
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for
//! the system inventory and the per-figure reproduction status.

pub use apps;
pub use obs;
pub use pmix;
pub use prrte;
pub use quo;
pub use simnet;

/// The MPI library (re-exported under its natural name).
pub use mpi_sessions as mpi;
