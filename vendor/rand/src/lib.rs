//! Offline vendored shim of the `rand` 0.8 API subset this workspace uses:
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::{shuffle,
//! choose}`.
//!
//! The generator is xoshiro256** seeded via splitmix64 — statistically fine
//! for simulation/test workloads, NOT cryptographically secure (neither is
//! the real `StdRng` contract the workspace relies on: only determinism
//! given a seed).

#![allow(clippy::all)] // vendored stand-in, not project code
/// Core RNG interface: a source of uniform random 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy (here: clock + address entropy; the
    /// workspace only uses seeded construction on determinism-critical
    /// paths).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_probe = 0u8;
        Self::seed_from_u64(t ^ ((&stack_probe as *const u8 as u64) << 17))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Values that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Extension methods every `RngCore` gets (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `SmallRng` also works.
    pub type SmallRng = StdRng;
}

/// Convenience thread-local-style generator (fresh entropy each call).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 32 elements should move something");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
