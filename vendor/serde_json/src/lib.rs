//! Offline vendored shim of `serde_json`: a JSON printer and parser over
//! the `serde` shim's [`Value`] model, exposing the `to_string` /
//! `to_vec` / `from_str` / `from_slice` (+ `_pretty`) entry points the
//! workspace uses.
//!
//! Output is valid JSON (RFC 8259): strings are escaped, objects iterate
//! in sorted-key order (deterministic), non-finite floats serialize as
//! `null` like the real crate.

#![allow(clippy::all)] // vendored stand-in, not project code
use std::fmt;

pub use serde::{Map, Value};
use serde::{Deserialize, Serialize};

/// Error for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => fmt_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, false, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, true, 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize any value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(serde::to_value(value))
}

/// Deserialize from a [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T> {
    serde::from_value(v).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| self.err("bad surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.err("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 4;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected object")?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let val = self.parse_value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON string into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    serde::from_value(v).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        let x: u32 = from_str("42").unwrap();
        assert_eq!(x, 42);
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(v, back);

        let mut m = HashMap::new();
        m.insert("k".to_string(), vec![true, false]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"k":[true,false]}"#);
        let back: HashMap<String, Vec<bool>> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn whitespace_and_nesting() {
        let s = r#" { "a" : [ 1 , { "b" : null } ] , "c" : "x" } "#;
        let v = parse_value(s).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("c").and_then(Value::as_str), Some("x"));
        let arr = obj.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].as_object().unwrap().get("b").unwrap().is_null());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
        // Non-ASCII passes through printing unescaped but re-parses.
        let out = to_string(&s).unwrap();
        let back: String = from_str(&out).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn float_keeps_float_shape() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let v = parse_value(&s).unwrap();
        assert!(matches!(v, Value::F64(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut m = HashMap::new();
        m.insert("list".to_string(), vec![1u8, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        let back: HashMap<String, Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }
}
