//! Offline vendored shim of the `proptest` subset this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! range strategies, `collection::vec`, `sample::subsequence`, plain
//! `name: Type` (Arbitrary) parameters, and `prop_assert!`/
//! `prop_assert_eq!`.
//!
//! Differences from real proptest, acceptable for this workspace's tests:
//! no shrinking (failures report the generated inputs instead), and the
//! per-test RNG is seeded deterministically from the test's module path so
//! runs are reproducible.

#![allow(clippy::all)] // vendored stand-in, not project code
use std::fmt::Debug;

/// Deterministic generator used by strategies (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Seed an RNG from a test identifier (deterministic per test).
pub fn rng_for(test_id: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let s = self.start;
                let span = (<$t>::MAX as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy yielding a constant (used for `Just`-style needs).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy (used by `name: Type`
/// parameters in `proptest!`).
pub trait Arbitrary: Sized + Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Size specification accepted by [`collection::vec`] and
/// [`sample::subsequence`]: an exact `usize` or a `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max_excl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max_excl, "empty size range");
        self.min + rng.below(self.max_excl - self.min)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_excl: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange { min: r.start, max_excl: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_excl: *r.end() + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy producing order-preserving subsequences of a base vector.
    #[derive(Debug)]
    pub struct Subsequence<T: Clone + Debug> {
        base: Vec<T>,
        size: SizeRange,
    }

    /// `proptest::sample::subsequence(values, size)`: picks `size` distinct
    /// indices and yields the elements in their original order.
    pub fn subsequence<T: Clone + Debug>(
        base: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { base, size: size.into() }
    }

    impl<T: Clone + Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.size.pick(rng).min(self.base.len());
            // Partial Fisher–Yates over indices, then restore order.
            let mut idx: Vec<usize> = (0..self.base.len()).collect();
            for i in 0..n {
                let j = i + rng.below(idx.len() - i);
                idx.swap(i, j);
            }
            let mut chosen: Vec<usize> = idx[..n].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.base[i].clone()).collect()
        }
    }
}

pub mod test_runner {
    /// Configuration block accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; persistence is not implemented.
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0, failure_persistence: None }
        }
    }

    impl ProptestConfig {
        /// Convenience constructor matching real proptest.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, Strategy, TestRng};
}

/// Assert inside a proptest body (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Bind one parameter-list entry, then recurse into the rest. The caller
/// wraps the parameter list in `[...]` with a guaranteed trailing comma,
/// which keeps the `tt*` tail unambiguous.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_body {
    ($rng:ident [] $body:block) => { $body };
    ($rng:ident [,] $body:block) => { $body };
    ($rng:ident [$pat:pat in $strat:expr, $($rest:tt)*] $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__prop_body!{ $rng [$($rest)*] $body }
    }};
    ($rng:ident [$name:ident : $ty:ty, $($rest:tt)*] $body:block) => {{
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__prop_body!{ $rng [$($rest)*] $body }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $crate::__prop_body!{ __rng [$($params)* ,] $body }
                }
            }
        )*
    };
}

/// Property-test block: optional `#![proptest_config(...)]` followed by
/// `fn name(pat in strategy, name: Type, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng_for("t1");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(1u64..), &mut rng);
            assert!(w >= 1);
            let x = Strategy::generate(&(-4i64..=4), &mut rng);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn vec_and_subsequence_sizes() {
        let mut rng = crate::rng_for("t2");
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let base: Vec<u8> = (0..12).collect();
            let sub = Strategy::generate(&sample::subsequence(base.clone(), 1..12), &mut rng);
            assert!((1..12).contains(&sub.len()));
            // Order-preserving subsequence of distinct values stays sorted.
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            assert_eq!(sub, sorted);
        }
        let exact = Strategy::generate(&collection::vec(0u32..5, 3), &mut rng);
        assert_eq!(exact.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: mixed `in`-strategy and typed params.
        #[test]
        fn macro_smoke(xs in collection::vec(0u16..10, 0..5), flag: bool) {
            prop_assert!(xs.len() < 5);
            prop_assert_eq!(flag || !flag, true);
        }
    }
}
