//! Offline vendored shim with the `crossbeam::channel` API surface this
//! workspace uses.
//!
//! The container has no crates.io access, so this provides a small MPMC
//! channel (Mutex<VecDeque> + Condvar) with cloneable senders *and*
//! receivers, disconnect tracking, and the error types the real crate
//! exposes. Throughput is far below real crossbeam, but the simulated
//! stack's channels carry control messages, not bulk data.

#![allow(clippy::all)] // vendored stand-in, not project code
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by `send` when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by blocking `recv` when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Create a channel with a capacity hint. The shim does not enforce the
    /// bound (senders never block); the workspace only uses capacities as a
    /// performance hint.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(t));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(t);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(t) => Ok(t),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeue, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    return Ok(t);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    return Ok(t);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drain-style iterator: yields until empty *and* disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let t1 = std::thread::spawn(move || rx.recv().unwrap());
            let t2 = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let mut got = vec![t1.join().unwrap(), t2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
