//! Offline vendored shim of the `criterion` API subset this workspace's
//! benches use.
//!
//! Instead of criterion's statistical sampling, each benchmark runs a
//! small fixed number of iterations and reports mean wall time. When the
//! harness is executed by `cargo test` (which builds and runs
//! `harness = false` bench targets), iteration counts stay tiny so the
//! suite finishes quickly; `cargo bench` runs more.

#![allow(clippy::all)] // vendored stand-in, not project code
use std::time::{Duration, Instant};

/// Opaque optimization barrier (best-effort on stable).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    /// Total measured time accumulated by the closure.
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += t0.elapsed();
    }

    /// Hand the iteration count to `f`, which returns the measured time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed += f(self.iters);
    }
}

/// Group of related benchmarks (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; the shim ignores sampling parameters.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Finish the group (no-op; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted, unused).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` executes harness=false bench targets; keep them
        // fast there and only spend effort under `cargo bench` (which
        // passes `--bench`).
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self { iters: if bench_mode { 10 } else { 1 } }
    }
}

impl Criterion {
    /// Configure iterations per benchmark.
    pub fn with_iterations(mut self, iters: u64) -> Self {
        self.iters = iters.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { iters: self.iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / self.iters.max(1) as f64;
        println!("bench {name:<40} {:>12.3} us/iter ({} iters)", per_iter * 1e6, self.iters);
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Criterion calls this at exit; the shim has nothing to flush.
    pub fn final_summary(&mut self) {}
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running all groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().with_iterations(3);
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_custom_receives_iters() {
        let mut c = Criterion::default().with_iterations(5);
        let mut seen = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).measurement_time(Duration::from_secs(1));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                seen = iters;
                Duration::from_micros(1)
            })
        });
        g.finish();
        assert_eq!(seen, 5);
    }
}
