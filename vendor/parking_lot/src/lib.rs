//! Offline vendored shim with the `parking_lot` API surface this workspace
//! uses, implemented over `std::sync`.
//!
//! The build container has no network access to crates.io, so the real
//! `parking_lot` cannot be downloaded. This shim keeps the ergonomics the
//! code relies on — non-poisoning guards returned straight from
//! `lock()`/`read()`/`write()`, and a `Condvar` whose `wait` takes
//! `&mut MutexGuard` — while delegating the actual synchronization to the
//! standard library. Poisoned locks are transparently recovered (the
//! parking_lot behavior: a panicking holder does not poison).

#![allow(clippy::all)] // vendored stand-in, not project code
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily take
/// the std guard by value (std's wait consumes the guard; parking_lot's
/// borrows it).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::Mutex::new(t) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`] (parking_lot-style
/// `wait(&mut guard)` signature).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, until - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::RwLock::new(t) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner: g }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner: g }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// One-time initialization token (subset of `parking_lot::Once`).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicUsize,
}

impl Once {
    /// Create a new `Once`.
    pub const fn new() -> Self {
        Self { inner: std::sync::Once::new(), done: AtomicUsize::new(0) }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        let done = &self.done;
        self.inner.call_once(|| {
            f();
            done.store(1, Ordering::Release);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
        // Guard still usable after the wait.
        *g = true;
        assert!(*g);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = 7;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: a panicking holder must not brick the lock.
        *m.lock() = 3;
        assert_eq!(*m.lock(), 3);
    }
}
