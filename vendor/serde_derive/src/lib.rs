//! Offline vendored shim of serde's `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros.
//!
//! No crates.io access means no `syn`/`quote`, so this parses the item's
//! `TokenStream` by hand. Supported shapes — the full set the workspace
//! uses — are non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like. Encoding matches serde_json's
//! externally-tagged default so values round-trip against real serde:
//!
//! * named struct      -> `{"field": ...}`
//! * newtype struct    -> inner value
//! * tuple struct      -> `[...]`
//! * unit enum variant -> `"Variant"`
//! * data variant      -> `{"Variant": <inner>}`
//!
//! Unsupported shapes (generics, unions) panic at expansion time with a
//! clear message rather than generating wrong code.

#![allow(clippy::all)] // vendored stand-in, not project code
use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Advance past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) tokens.
fn skip_attrs_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list on commas at angle-bracket depth zero. Commas inside
/// `(...)`/`{...}`/`[...]` are invisible here (they are nested groups);
/// commas inside `<...>` are sibling tokens, hence the depth tracking.
fn split_top_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `{ field: Ty, ... }` contents into field names.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_commas(group_tokens)
        .iter()
        .filter_map(|seg| {
            let i = skip_attrs_vis(seg, 0);
            match seg.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                None => None,
                Some(other) => {
                    panic!("serde_derive shim: unexpected token in field position: {other}")
                }
            }
        })
        .collect()
}

/// Parse `( Ty, ... )` contents into an arity.
fn parse_tuple_arity(group_tokens: &[TokenTree]) -> usize {
    split_top_commas(group_tokens)
        .iter()
        .filter(|seg| {
            let i = skip_attrs_vis(seg, 0);
            i < seg.len()
        })
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_vis(&toks, 0);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(parse_tuple_arity(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: malformed struct `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
            };
            let body_toks: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_top_commas(&body_toks)
                .iter()
                .filter_map(|seg| {
                    let j = skip_attrs_vis(seg, 0);
                    let vname = match seg.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => return None,
                        Some(other) => {
                            panic!("serde_derive shim: unexpected variant token: {other}")
                        }
                    };
                    let fields = match seg.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Named(parse_named_fields(&inner))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Tuple(parse_tuple_arity(&inner))
                        }
                        _ => Fields::Unit,
                    };
                    Some((vname, fields))
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Serialize generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "__s.serialize_value(serde::Value::Null)".to_string(),
                Fields::Tuple(1) => {
                    "__s.serialize_value(serde::to_value(&self.0))".to_string()
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> =
                        (0..*n).map(|i| format!("serde::to_value(&self.{i})")).collect();
                    format!(
                        "__s.serialize_value(serde::Value::Array(vec![{}]))",
                        elems.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let mut b = String::from("let mut __m = serde::Map::new();\n");
                    for f in fs {
                        b.push_str(&format!(
                            "__m.insert(String::from(\"{f}\"), serde::to_value(&self.{f}));\n"
                        ));
                    }
                    b.push_str("__s.serialize_value(serde::Value::Object(__m))");
                    b
                }
            };
            out.push_str(&format!(
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\nimpl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => __s.serialize_value(\
                             serde::Value::Str(String::from(\"{v}\"))),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> =
                                binds.iter().map(|b| format!("serde::to_value({b})")).collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{\n\
                             let mut __m = serde::Map::new();\n\
                             __m.insert(String::from(\"{v}\"), {inner});\n\
                             __s.serialize_value(serde::Value::Object(__m))\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let mut inner = String::from("let mut __fm = serde::Map::new();\n");
                        for f in fs {
                            inner.push_str(&format!(
                                "__fm.insert(String::from(\"{f}\"), serde::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut __m = serde::Map::new();\n\
                             __m.insert(String::from(\"{v}\"), serde::Value::Object(__fm));\n\
                             __s.serialize_value(serde::Value::Object(__m))\n}}\n"
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\nimpl serde::Serialize for {name} {{\n\
                 fn serialize<__S: serde::Serializer>(&self, __s: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Deserialize generation
// ---------------------------------------------------------------------------

fn gen_named_constructor(path: &str, fs: &[String], map_var: &str) -> String {
    let mut b = format!("Ok({path} {{\n");
    for f in fs {
        b.push_str(&format!(
            "{f}: serde::from_value({map_var}.remove(\"{f}\")\
             .unwrap_or(serde::Value::Null))?,\n"
        ));
    }
    b.push_str("})");
    b
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
                Fields::Tuple(1) => format!("Ok({name}(serde::from_value(__v)?))"),
                Fields::Tuple(n) => {
                    let mut b = format!(
                        "match __v {{\n\
                         serde::Value::Array(__a) if __a.len() == {n} => {{\n\
                         let mut __it = __a.into_iter();\nOk({name}(\n"
                    );
                    for _ in 0..*n {
                        b.push_str("serde::from_value(__it.next().expect(\"len checked\"))?,\n");
                    }
                    b.push_str(&format!(
                        "))\n}}\n__other => Err(serde::DeError(format!(\
                         \"expected array of {n} for {name}, got {{}}\", __other.kind()))),\n}}"
                    ));
                    b
                }
                Fields::Named(fs) => {
                    let ctor = gen_named_constructor(name, fs, "__m");
                    format!(
                        "match __v {{\n\
                         serde::Value::Object(mut __m) => {{ let _ = &mut __m; {ctor} }}\n\
                         __other => Err(serde::DeError(format!(\
                         \"expected object for {name}, got {{}}\", __other.kind()))),\n}}"
                    )
                }
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(serde::from_value(__val)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{v}\" => match __val {{\n\
                             serde::Value::Array(__a) if __a.len() == {n} => {{\n\
                             let mut __it = __a.into_iter();\nOk({name}::{v}(\n"
                        );
                        for _ in 0..*n {
                            arm.push_str(
                                "serde::from_value(__it.next().expect(\"len checked\"))?,\n",
                            );
                        }
                        arm.push_str(&format!(
                            "))\n}}\n__other => Err(serde::DeError(format!(\
                             \"expected array of {n} for {name}::{v}, got {{}}\", \
                             __other.kind()))),\n}},\n"
                        ));
                        data_arms.push_str(&arm);
                    }
                    Fields::Named(fs) => {
                        let ctor = gen_named_constructor(&format!("{name}::{v}"), fs, "__fm");
                        data_arms.push_str(&format!(
                            "\"{v}\" => match __val {{\n\
                             serde::Value::Object(mut __fm) => {{ let _ = &mut __fm; {ctor} }}\n\
                             __other => Err(serde::DeError(format!(\
                             \"expected object for {name}::{v}, got {{}}\", \
                             __other.kind()))),\n}},\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 serde::Value::Str(__tag) => match __tag.as_str() {{\n{unit_arms}\
                 __o => Err(serde::DeError(format!(\"unknown variant {{__o}} for {name}\"))),\n}}\n\
                 serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __val) = __m.into_iter().next().expect(\"len checked\");\n\
                 match __k.as_str() {{\n{data_arms}\
                 __o => Err(serde::DeError(format!(\"unknown variant {{__o}} for {name}\"))),\n}}\n}}\n\
                 __other => Err(serde::DeError(format!(\
                 \"expected variant encoding for {name}, got {{}}\", __other.kind()))),\n}}"
            );
            (name.clone(), body)
        }
    };

    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all)]\nimpl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __v = __d.take_value()?;\n\
         let __r: ::core::result::Result<Self, serde::DeError> = (|| {{\n{body}\n}})();\n\
         __r.map_err(|__e| <__D::Error as serde::de::Error>::custom(__e))\n\
         }}\n}}\n"
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
