//! Offline vendored shim of `bytes::Bytes`: a cheaply-cloneable,
//! reference-counted, immutable byte buffer with zero-copy `clone` and
//! `slice`, backed by `Arc<[u8]>`.
//!
//! The container has no crates.io access; the simulated fabric only needs
//! shared-ownership payloads (clones must alias the same backing storage so
//! a broadcast to N ranks does not copy N times), which this provides.

#![allow(clippy::all)] // vendored stand-in, not project code
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer (subset of `bytes::Bytes`).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer (no allocation).
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Buffer over a static slice. (The shim copies once into an `Arc`;
    /// clones still share that single allocation.)
    pub fn from_static(b: &'static [u8]) -> Self {
        Self::copy_from_slice(b)
    }

    /// Buffer copied from an arbitrary slice.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Self { data: Arc::from(b), start: 0, end: b.len() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds: {begin}..{end} of {len}");
        Self { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// The bytes as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self { data: Arc::from(v), start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        let len = b.len();
        Self { data: Arc::from(b), start: 0, end: len }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ref().as_ptr(), unsafe { a.as_ref().as_ptr().add(2) });
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abcd");
        assert_eq!(s.len(), 4);
        assert_eq!(&s[..], b"abcd");
    }
}
