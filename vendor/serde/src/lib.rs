//! Offline vendored shim of the `serde` trait surface this workspace uses.
//!
//! The container has no crates.io access, so this reimplements the subset
//! of serde the stack relies on. Unlike real serde's streaming data model,
//! everything funnels through an owned JSON-shaped [`Value`]: a
//! `Serializer` receives one `Value`, a `Deserializer` yields one `Value`.
//! That keeps hand-written impls (e.g. `ProcId`'s tuple encoding) and the
//! `serde_derive` shim source-compatible with the real-serde signatures:
//!
//! ```ignore
//! fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>;
//! fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>;
//! ```
//!
//! Externally-tagged enum encoding matches serde_json's default, so data
//! written by the real stack round-trips here and vice versa.

#![allow(clippy::all)] // vendored stand-in, not project code
use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Object representation: sorted keys give deterministic JSON output.
pub type Map = BTreeMap<String, Value>;

/// Owned JSON-shaped value — the pivot of the shim's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// View as object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// View as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to u64 when losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Coerce to i64 when losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Coerce to f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            _ => None,
        }
    }

    /// View as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error machinery (mirrors `serde::de::Error`).
pub mod de {
    /// Constructor bound every `Deserializer::Error` must satisfy.
    pub trait Error: Sized {
        /// Build an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// The shim's concrete deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl de::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A sink that accepts one finished [`Value`].
pub trait Serializer: Sized {
    /// Successful output type.
    type Ok;
    /// Error type.
    type Error;

    /// Consume the serializer with the final value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source that yields one owned [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type; must be constructible from a message.
    type Error: de::Error;

    /// Consume the deserializer into a value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types that can serialize themselves.
pub trait Serialize {
    /// Serialize `self` into `s`.
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>;
}

/// Types that can deserialize themselves.
pub trait Deserialize<'de>: Sized {
    /// Deserialize from `d`.
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>;
}

/// Infallible serializer that just hands back the built [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn serialize_value(self, v: Value) -> Result<Value, Self::Error> {
        Ok(v)
    }
}

/// Deserializer over an owned [`Value`]. Implements `Deserializer` for
/// every lifetime, so generic container impls can recurse without tying
/// the element's lifetime to a borrow.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Serialize any value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    match t.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Deserialize any owned-output type from a [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(v))
}

fn de_err<E: de::Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as u64;
                let val = if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) };
                s.serialize_value(val)
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(t) => t.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Array(self.iter().map(|t| to_value(t)).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Null)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Array(vec![$(to_value(&self.$n)),+]))
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), to_value(v));
        }
        s.serialize_value(Value::Object(m))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), to_value(v));
        }
        s.serialize_value(Value::Object(m))
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Matches real serde's {secs, nanos} encoding for Duration.
        let mut m = Map::new();
        m.insert("secs".into(), Value::I64(self.as_secs().min(i64::MAX as u64) as i64));
        m.insert("nanos".into(), Value::I64(self.subsec_nanos() as i64));
        s.serialize_value(Value::Object(m))
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_bool().ok_or_else(|| de_err("bool", &v))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Str(s) => Ok(s),
            other => Err(de_err("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        let s = v.as_str().ok_or_else(|| de_err("char", &v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-char string")),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty : $via:ident),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let wide = v.$via().ok_or_else(|| de_err(stringify!($t), &v))?;
                <$t>::try_from(wide)
                    .map_err(|_| de::Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64,
             i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_f64().ok_or_else(|| de_err("number", &v))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        v.as_f64().map(|f| f as f32).ok_or_else(|| de_err("number", &v))
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        if v.is_null() {
            Ok(())
        } else {
            Err(de_err("null", &v))
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(ValueDeserializer(v))
                .map(Some)
                .map_err(de::Error::custom)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Array(items) => items
                .into_iter()
                .map(|it| T::deserialize(ValueDeserializer(it)).map_err(de::Error::custom))
                .collect(),
            other => Err(de_err("array", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                match v {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok((
                            $({
                                let _ = $n;
                                $t::deserialize(ValueDeserializer(it.next().expect("len checked")))
                                    .map_err(de::Error::custom)?
                            },)+
                        ))
                    }
                    other => Err(de_err(concat!("array of length ", $len), &other)),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 T0)
    (2; 0 T0, 1 T1)
    (3; 0 T0, 1 T1, 2 T2)
    (4; 0 T0, 1 T1, 2 T2, 3 T3)
    (5; 0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (6; 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| {
                    V::deserialize(ValueDeserializer(v))
                        .map(|v| (k, v))
                        .map_err(de::Error::custom)
                })
                .collect(),
            other => Err(de_err("object", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| {
                    V::deserialize(ValueDeserializer(v))
                        .map(|v| (k, v))
                        .map_err(de::Error::custom)
                })
                .collect(),
            other => Err(de_err("object", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        let obj = v.as_object().ok_or_else(|| de_err("duration object", &v))?;
        let secs = obj.get("secs").and_then(Value::as_u64).unwrap_or(0);
        let nanos = obj.get("nanos").and_then(Value::as_u64).unwrap_or(0) as u32;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_value::<u32>(to_value(&7u32)).unwrap(), 7);
        assert_eq!(from_value::<i64>(to_value(&-3i64)).unwrap(), -3);
        assert_eq!(from_value::<String>(to_value("hi")).unwrap(), "hi");
        assert!(from_value::<bool>(to_value(&true)).unwrap());
        assert_eq!(from_value::<f64>(to_value(&1.5f64)).unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = from_value(to_value(&v)).unwrap();
        assert_eq!(v, back);

        let mut m = HashMap::new();
        m.insert("x".to_string(), 9u64);
        let back: HashMap<String, u64> = from_value(to_value(&m)).unwrap();
        assert_eq!(m, back);

        let o: Option<u8> = None;
        assert_eq!(from_value::<Option<u8>>(to_value(&o)).unwrap(), None);
        assert_eq!(from_value::<Option<u8>>(to_value(&Some(4u8))).unwrap(), Some(4));
    }

    #[test]
    fn int_range_checks() {
        assert!(from_value::<u8>(Value::I64(300)).is_err());
        assert!(from_value::<u32>(Value::I64(-1)).is_err());
        assert_eq!(from_value::<u64>(Value::U64(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn duration_roundtrip() {
        let d = std::time::Duration::new(3, 250);
        let back: std::time::Duration = from_value(to_value(&d)).unwrap();
        assert_eq!(d, back);
    }
}
