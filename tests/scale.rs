//! Paper-scale smoke tests: full 28-processes-per-node jobs (the Jupiter
//! configuration of Figs. 3b/4/6) must work end to end, and the sparse
//! group representation must pay off at scale.

use mpi_sessions_repro::mpi::group::{MpiGroup, ProcRef, RangeStride};
use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use std::sync::Arc;

#[test]
fn full_jupiter_node_28_ranks() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 28));
    let out = launcher
        .spawn(JobSpec::new(28), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "scale28").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[ctx.rank() as u64]).unwrap()[0];
            coll::barrier(&c).unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![27 * 28 / 2; 28]);
}

#[test]
fn two_jupiter_nodes_56_ranks_with_split() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 28));
    let out = launcher
        .spawn(JobSpec::new(56), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "scale56").unwrap();
            // One communicator per node via split on the shared pset size.
            let node_color = ctx.node().0;
            let node_comm = c.split(node_color, ctx.rank()).unwrap();
            assert_eq!(node_comm.size(), 28);
            let local_sum =
                coll::allreduce_t(&node_comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            node_comm.free().unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
            local_sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![28; 56]);
}

#[test]
fn sparse_group_representation_saves_memory_at_scale() {
    // A 10,000-member base with a strided subset: the range representation
    // must cost O(ranges), not O(members), and behave identically.
    let base: Arc<[ProcRef]> = (0..10_000u32)
        .map(|i| ProcRef {
            proc: mpi_sessions_repro::pmix::ProcId::new("big", i),
            endpoint: mpi_sessions_repro::simnet::EndpointId(1_000_000 + i as u64),
        })
        .collect::<Vec<_>>()
        .into();
    let sparse = MpiGroup::from_ranges(
        base.clone(),
        vec![RangeStride { first: 0, last: 9_999, stride: 7 }],
    )
    .unwrap();
    let dense = sparse.to_dense();
    assert_eq!(sparse.size(), dense.size());
    assert_eq!(sparse.size(), 1429);
    assert!(sparse.storage_cost() <= 2, "ranges must stay compressed");
    assert!(dense.storage_cost() >= 1429);
    // Same membership, same order.
    for i in [0usize, 1, 714, 1428] {
        assert_eq!(sparse.member(i).unwrap().proc, dense.member(i).unwrap().proc);
    }
    assert_eq!(
        sparse.rank_of(&mpi_sessions_repro::pmix::ProcId::new("big", 7)),
        Some(1)
    );
}

#[test]
fn deep_derivation_chains_at_scale() {
    // 255 sibling dups from one parent — one PGCID total (the amortization
    // the paper's §IV-C2 calls out), then the 256th requires a fresh one.
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let parent = Comm::create_from_group(&g, "deep").unwrap();
            let parent_pgcid = parent.excid().unwrap().pgcid;
            let mut children = Vec::with_capacity(256);
            for i in 0..255 {
                let c = parent.dup().unwrap();
                assert_eq!(
                    c.excid().unwrap().pgcid,
                    parent_pgcid,
                    "sibling {i} must reuse the parent PGCID"
                );
                children.push(c);
            }
            let the_256th = parent.dup().unwrap();
            assert_ne!(the_256th.excid().unwrap().pgcid, parent_pgcid);
            // All 256 children are usable; check a couple.
            coll::barrier(&children[0]).unwrap();
            coll::barrier(children.last().unwrap()).unwrap();
            coll::barrier(&the_256th).unwrap();
            the_256th.free().unwrap();
            for c in children {
                c.free().unwrap();
            }
            parent.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .unwrap();
}
