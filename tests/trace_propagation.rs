//! Causal-trace propagation through the full stack: contexts piggybacked
//! on simnet messages must stitch the per-process span DAGs into one
//! cross-process trace, and fault injection must land on the span that
//! was live when the fault fired.
//!
//! These are the end-to-end counterparts of the per-crate span unit tests
//! (`core/src/pml/mod.rs`, `pmix/tests/group_stages.rs`): everything here
//! goes through `Launcher::spawn`, so launch fan-out, PMIx, CID management
//! and the PML all contribute to the same registry.

use chaos::{ChaosWorld, FaultClass, FaultPlan, FaultRule, RuleScope, SeqWindow};
use mpi_sessions_repro::mpi::{Comm, ErrHandler, Info, Session, ThreadLevel};
use mpi_sessions_repro::obs;
use mpi_sessions_repro::pmix::ProcId;
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use std::time::Duration;

/// One sessions-mode job: init, world comm, a little point-to-point
/// traffic (forces the extended-header handshake), teardown.
fn run_sessions_job(launcher: &Launcher, np: u32) {
    launcher
        .spawn(JobSpec::new(np), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "trace-prop").unwrap();
            if ctx.rank() == 0 {
                c.send(1, 7, b"hello").unwrap();
                c.send(1, 7, b"again").unwrap();
            } else if ctx.rank() == 1 {
                c.recv(0, 7).unwrap();
                c.recv(0, 7).unwrap();
            }
            c.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .unwrap();
}

/// The exCID handshake must produce exactly one cross-process causal link
/// per sender/receiver pair: the receiver-side `pml.handshake_recv` span
/// links the sender's `pml.handshake` span (whose context rode on the
/// extended headers), and both end up in the same trace.
#[test]
fn handshake_context_links_sender_to_receiver_across_processes() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    run_sessions_job(&launcher, 2);

    let spans = launcher.universe().fabric().obs().spans_snapshot();
    let handshakes: Vec<_> = spans.iter().filter(|s| s.name == "pml.handshake").collect();
    let recvs: Vec<_> = spans.iter().filter(|s| s.name == "pml.handshake_recv").collect();
    assert!(!recvs.is_empty(), "no handshake_recv spans recorded");
    for r in recvs {
        assert_eq!(r.links.len(), 1, "one causal link per handshake receiver");
        let hs = handshakes
            .iter()
            .find(|h| h.id == r.links[0].span)
            .expect("link resolves to a sender handshake span");
        assert_ne!(hs.process, r.process, "link must cross processes");
        assert_eq!(hs.trace, r.trace, "context propagation joins the traces");
    }
}

/// Launch fan-out: every `rank.main` span is parented under the
/// launcher's `launch` span, so the whole job forms a single trace rooted
/// at the launcher even though ranks run on their own threads.
#[test]
fn rank_spans_are_children_of_the_launch_span() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    run_sessions_job(&launcher, 2);

    let spans = launcher.universe().fabric().obs().spans_snapshot();
    let launch = spans
        .iter()
        .find(|s| s.name == "launch" && s.process == "launcher")
        .expect("launch span");
    let ranks: Vec<_> = spans.iter().filter(|s| s.name == "rank.main").collect();
    assert_eq!(ranks.len(), 2);
    for r in &ranks {
        assert_eq!(r.parent, Some(launch.id), "rank.main parents under launch");
        assert_eq!(r.trace, launch.trace);
    }
}

/// The analyzed report orders the three group-construct stages by
/// canonical logical time on every server, and its `stages` table carries
/// nonzero exclusive cost for each of them — the property the fig4
/// critical-path claim rests on.
#[test]
fn analyzed_group_stages_have_increasing_logical_times() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    run_sessions_job(&launcher, 4);

    let registry = launcher.universe().fabric().obs();
    let report = obs::analyze::analyze(&registry.spans_snapshot(), registry.spans_dropped());
    let spans = report.as_object().unwrap()["spans"].as_array().unwrap();
    // Stage spans of the same collective op share (process, key); several
    // ops run per server (fences, construct, destruct), so match on both.
    let start_of = |process: &str, key: &str, name: &str| -> Option<u64> {
        spans.iter().map(|s| s.as_object().unwrap()).find_map(|s| {
            (s["process"].as_str() == Some(process)
                && s["key"].as_str() == Some(key)
                && s["name"].as_str() == Some(name))
            .then(|| s["logical_start"].as_u64().unwrap())
        })
    };
    let mut chains_seen = 0;
    for sp in spans.iter().map(|s| s.as_object().unwrap()) {
        if sp["name"].as_str() != Some("group.fanin") {
            continue;
        }
        chains_seen += 1;
        let process = sp["process"].as_str().unwrap();
        let key = sp["key"].as_str().unwrap();
        let fanin = sp["logical_start"].as_u64().unwrap();
        let xchg = start_of(process, key, "group.xchg").expect("xchg span for same op");
        let fanout = start_of(process, key, "group.fanout").expect("fanout span for same op");
        assert!(
            fanin < xchg && xchg < fanout,
            "{process} {key}: {fanin} < {xchg} < {fanout}"
        );
    }
    assert!(chains_seen >= 2, "both node servers ran stage chains");

    let stages = report.as_object().unwrap()["stages"].as_object().unwrap();
    for stage in ["group.fanin", "group.xchg", "group.fanout"] {
        let s = stages.get(stage).expect("stage summarized").as_object().unwrap();
        assert!(s["exclusive"].as_u64().unwrap() > 0, "{stage} has nonzero exclusive");
    }
}

/// A chaos kill fired mid-fence annotates the fence span that was live on
/// the injecting thread: the `fault:kill(rel=…)` label must appear on a
/// `pmix.fence` span and surface in the analyzer's `fault_spans` table.
#[test]
fn kill_mid_fence_annotates_the_interrupted_fence_span() {
    let mut scope = RuleScope::pair_within(1, 3);
    scope.dst_in = Some((2, 3)); // only the node0→node1 server direction
    let plan = FaultPlan::new(
        4242,
        vec![FaultRule::new(FaultClass::Kill, scope, SeqWindow::exactly(0)).with_kill_rel(6)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    world
        .launcher()
        .spawn_named("trace-kill", JobSpec::new(4), |ctx| {
            let ns = ctx.proc().nspace().to_owned();
            let all: Vec<ProcId> =
                (0..ctx.size()).map(|r| ProcId::new(ns.as_str(), r)).collect();
            // The fence's inter-server contribution pulls the trigger; the
            // outcome (error or completion) is the chaos suite's concern —
            // here only the span annotation matters.
            let _ = ctx.pmix().fence_timeout(&all, false, Duration::from_secs(5));
        })
        .join()
        .unwrap();

    let registry = world.universe().fabric().obs();
    let spans = registry.spans_snapshot();
    let annotated: Vec<_> = spans
        .iter()
        .filter(|s| s.faults.iter().any(|f| f.starts_with("fault:kill(")))
        .collect();
    assert!(!annotated.is_empty(), "kill fault annotated no span");
    assert!(
        annotated.iter().any(|s| s.name == "pmix.fence"),
        "kill fault must land on the interrupted pmix.fence span, got: {:?}",
        annotated.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // And the offline report surfaces it for fault attribution.
    let report = obs::analyze::analyze(&spans, registry.spans_dropped());
    let fault_spans = report.as_object().unwrap()["fault_spans"].as_array().unwrap();
    assert!(
        fault_spans.iter().any(|e| {
            let e = e.as_object().unwrap();
            e["span"].as_str().unwrap().contains("pmix.fence")
                && e["faults"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .any(|f| f.as_str().unwrap().starts_with("fault:kill("))
        }),
        "analyzer fault_spans must attribute the kill to a fence span"
    );
}
