//! Watchdog lifecycle suite: the MPI_T-style introspection layer's stall
//! detector, its timeout surface, and the cvar control plane.
//!
//! Four claims, each a separate world:
//!
//! 1. A nonblocking construct whose peers have not yet joined *stalls
//!    deterministically* once the per-process `core.stall_ticks` threshold
//!    of profitless engine sweeps is crossed (threshold lowered through
//!    the cvar registry, not the legacy setter), and *clears* with a
//!    matching `req.unstalled` the moment the peers arrive — so the
//!    `stall-terminal` invariant audits a full stall/heal episode.
//! 2. `SetupRequest::wait_timeout` gives up on logical-deadline expiry
//!    with an [`ErrClass::Timeout`] whose message embeds the structured
//!    stall diagnosis, and the request stays live: the same handle waits
//!    to completion once the peers show up.
//! 3. The quiet blocking wrappers never register with the progress
//!    engine, so even a pathological 1-tick threshold produces zero
//!    `req.stalled` events on an all-blocking workload.
//! 4. Cvar writes are behavior-identical to the legacy setters they
//!    absorbed: registry writes and direct setter calls land on the same
//!    underlying state, in both directions, at universe and process
//!    scope.
//!
//! Runs 1–3 go through [`ChaosWorld`] so every episode is additionally
//! checked by the cross-layer invariant sweep (including
//! `stall-terminal`).

use chaos::{ChaosWorld, FaultClass, FaultPlan, FaultRule, RuleScope, SeqWindow};
use mpi_sessions_repro::mpi::instance::MpiProcess;
use mpi_sessions_repro::mpi::{
    coll, Comm, ErrClass, ErrHandler, Info, ReduceOp, Session, ThreadLevel,
};
use mpi_sessions_repro::obs::{AttrValue, CvarValue};
use mpi_sessions_repro::prrte::{JobSpec, Launcher, ProcCtx};
use mpi_sessions_repro::simnet::SimTestbed;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn new_session(ctx: &ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

/// Raw obs process names of the given ranks (for the cid-agreement check).
fn rank_processes(world: &ChaosWorld, ranks: std::ops::Range<u32>) -> Vec<String> {
    let base = world.universe().fabric().base_endpoint_id();
    ranks.map(|r| (base + world.rank_rel(r)).to_string()).collect()
}

/// The pinned async-setup delay plan (same shape as the chaos suite's
/// delay scenario): a seeded subset of the first inter-server messages is
/// delivered late, so the stall episode plays out under injected latency
/// rather than on a conveniently quiet fabric.
fn delay_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(15)],
    )
}

/// Claim 1: stall fires after the cvar-lowered tick threshold and clears
/// on heal; the whole episode passes the `stall-terminal` audit.
#[test]
fn stall_fires_under_pinned_delay_and_clears_on_heal() {
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), delay_plan(0x57A11));
    let gate = Arc::new(Barrier::new(4));
    let out = world
        .launcher()
        .spawn_named("watchdog-stall", JobSpec::new(4), move |ctx| {
            let session = new_session(&ctx);
            let group = session.group_from_pset("mpi://world").unwrap();
            let process = MpiProcess::obtain(&ctx);
            let comm = if ctx.rank() == 0 {
                let obs = process.obs();
                let scope = process.proc().to_string();
                // Lower the watchdog threshold through the MPI_T surface —
                // the whole point is that no code change or legacy setter
                // call is needed to retune a live process.
                obs.cvar_write(&scope, "core.stall_ticks", CvarValue::U64(3)).unwrap();
                let req = Comm::icomm_create_from_group(&group, "wd-stall").unwrap();
                // The peers are parked at `gate`, so the construct cannot
                // advance: each engine sweep is a profitless tick and the
                // watchdog must fire after exactly the configured three.
                let mut sweeps = 0u32;
                while !req.is_stalled() {
                    process.progress();
                    sweeps += 1;
                    assert!(sweeps < 16, "watchdog never fired: {}", req.diagnosis());
                }
                assert_eq!(sweeps, 3, "stall must fire exactly at the cvar threshold");
                let d = req.diagnosis();
                assert!(
                    d.contains("stalled=true") && d.contains("parked_on="),
                    "diagnosis must carry the stall flag and the parked-on detail: {d}"
                );
                let stalls = obs.events_named("req.stalled");
                let id = req.id();
                assert!(
                    stalls.iter().any(|e| {
                        e.process == scope
                            && e.attrs.iter().any(|(k, v)| {
                                k == "id" && matches!(v, AttrValue::U64(v) if *v == id)
                            })
                            && e.attrs.iter().any(|(k, _)| k == "waiting_on")
                    }),
                    "req.stalled must carry the request id and a waiting_on attr: {stalls:?}"
                );
                // Heal: release the peers; their joins complete the
                // construct and the watchdog must retract the stall.
                gate.wait();
                let comm = req.wait().unwrap();
                assert!(
                    obs.events_named("req.unstalled").iter().any(|e| e.process == scope),
                    "a resumed request must emit req.unstalled"
                );
                comm
            } else {
                gate.wait();
                Comm::create_from_group(&group, "wd-stall").unwrap()
            };
            let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            comm.free().unwrap();
            session.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    world.finish(None, cid).assert_clean();
}

/// Claim 2: `wait_timeout` expires with a diagnosis-bearing Timeout and
/// the request survives to be waited on again.
#[test]
fn wait_timeout_surfaces_diagnosis_and_leaves_request_live() {
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), delay_plan(0x7E0));
    let gate = Arc::new(Barrier::new(4));
    let out = world
        .launcher()
        .spawn_named("watchdog-timeout", JobSpec::new(4), move |ctx| {
            let session = new_session(&ctx);
            let group = session.group_from_pset("mpi://world").unwrap();
            let comm = if ctx.rank() == 0 {
                let mut req = Comm::icomm_create_from_group(&group, "wd-timeout").unwrap();
                // Peers are parked, so the construct cannot finish inside
                // the budget; the logical deadline (wall elapsed AND
                // fabric quiesced) expires despite the injected delays.
                let err = req.wait_timeout(Duration::from_millis(40)).unwrap_err();
                assert_eq!(err.class, ErrClass::Timeout);
                for needle in ["op=comm_create_from_group", "stage=", "parked_on="] {
                    assert!(
                        err.message.contains(needle),
                        "timeout must embed the stall diagnosis ({needle}): {}",
                        err.message
                    );
                }
                assert!(!req.is_complete(), "a timed-out request stays in flight");
                gate.wait();
                // Same handle, second wait: completes normally.
                req.wait().unwrap()
            } else {
                gate.wait();
                Comm::create_from_group(&group, "wd-timeout").unwrap()
            };
            let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            comm.free().unwrap();
            session.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    world.finish(None, cid).assert_clean();
}

/// Claim 3: quiet blocking paths are invisible to the watchdog — even a
/// 1-tick threshold yields zero stall events on an all-blocking workload.
#[test]
fn quiet_blocking_paths_never_trip_the_watchdog() {
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), FaultPlan::quiet(0xB10C));
    let out = world
        .launcher()
        .spawn_named("watchdog-quiet", JobSpec::new(4), |ctx| {
            let process = MpiProcess::obtain(&ctx);
            let scope = process.proc().to_string();
            process.obs().cvar_write(&scope, "core.stall_ticks", CvarValue::U64(1)).unwrap();
            let session = new_session(&ctx);
            let group = session.group_from_pset("mpi://world").unwrap();
            let comm = Comm::create_from_group(&group, "wd-quiet").unwrap();
            let sum = coll::allreduce_t(&comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            comm.free().unwrap();
            session.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let obs = world.universe().fabric().obs().clone();
    assert!(
        obs.events_named("req.stalled").is_empty(),
        "blocking wrappers run quiet and must never register with the watchdog"
    );
    let cid = rank_processes(&world, 0..4);
    world.finish(None, cid).assert_clean();
}

/// Claim 4 (the cvar round-trip): registry writes and legacy setters are
/// two doors to the same state. Writing through one must be observable
/// through the other, at both universe and per-process scope.
#[test]
fn cvar_writes_are_behavior_identical_to_legacy_setters() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let uni = launcher.universe().clone();
    let obs = uni.fabric().obs().clone();

    // Universe scope, cvar -> accessor direction.
    obs.cvar_write("universe", "pmix.pgcid_block", CvarValue::U64(5)).unwrap();
    assert!(
        uni.servers().iter().all(|s| s.pgcid_block() == 5),
        "cvar write must reach every server exactly like set_pgcid_block"
    );
    obs.cvar_write("universe", "registry.gc_enabled", CvarValue::Bool(false)).unwrap();
    assert!(!uni.registry().gc_enabled());

    // Universe scope, legacy-setter -> cvar direction (the readers are
    // live closures over the real state, not shadow copies).
    uni.set_pgcid_block(9);
    assert_eq!(obs.cvar_read("universe", "pmix.pgcid_block"), Some(CvarValue::U64(9)));
    uni.registry().set_gc_enabled(true);
    assert_eq!(obs.cvar_read("universe", "registry.gc_enabled"), Some(CvarValue::Bool(true)));

    // Per-process scope: rank 0 configures itself through the registry,
    // rank 1 uses the legacy setters; both must land on identical state
    // and both must read back identically through the cvar surface.
    let out = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let p = MpiProcess::obtain(&ctx);
            let scope = p.proc().to_string();
            let obs = p.obs();
            if ctx.rank() == 0 {
                obs.cvar_write(&scope, "pml.handshake_cache_cap", CvarValue::U64(3)).unwrap();
                obs.cvar_write(&scope, "core.stall_ticks", CvarValue::U64(17)).unwrap();
            } else {
                p.pml().set_handshake_cache_cap(3);
                p.progress_engine().set_stall_ticks(17);
            }
            (
                p.pml().handshake_cache_cap(),
                p.progress_engine().stall_ticks(),
                obs.cvar_read(&scope, "pml.handshake_cache_cap"),
                obs.cvar_read(&scope, "core.stall_ticks"),
            )
        })
        .join()
        .unwrap();
    assert_eq!(out[0], out[1], "cvar writes and legacy setters must be indistinguishable");
    assert_eq!(out[0].0, 3);
    assert_eq!(out[0].1, 17);
    assert_eq!(out[0].2, Some(CvarValue::U64(3)));
    assert_eq!(out[0].3, Some(CvarValue::U64(17)));
}

/// Claim 5 (the dead-peer fast path): a request whose only possible
/// completer is a dead process must fail `ProcTerminated` as soon as the
/// fabric is quiet — not burn the caller's whole logical-deadline budget
/// and come back with a useless `Timeout`. This is a fails-pre-fix
/// regression: before requests tracked their `waiting_on` endpoint,
/// `wait_timeout` had no way to tell "peers are slow" from "the peer can
/// never answer", and a 30-second budget below really took 30 seconds.
#[test]
fn wait_on_dead_peer_fails_proc_terminated_fast() {
    let world = ChaosWorld::new(SimTestbed::tiny(1, 3), FaultPlan::quiet(0xDEADBEE));
    let nspace = "watchdog-dead";
    let handle = world.launcher().spawn_named(nspace, JobSpec::new(3), |ctx| {
        let session = new_session(&ctx);
        let group = session.group_from_pset("mpi://world").unwrap();
        let comm = Comm::create_from_group(&group, "wd-dead").unwrap();
        if ctx.rank() == 2 {
            // Victim: hold the endpoint open until the driver kills it.
            std::thread::sleep(Duration::from_secs(5));
            return None;
        }
        let mut faults = session.watch_faults().unwrap();
        let victim = faults.next_timeout(Duration::from_secs(10)).expect("fault");
        assert_eq!(victim.rank(), 2);
        if ctx.rank() == 1 {
            session.finalize().unwrap();
            return None;
        }
        // Rank 0: post a receive naming the corpse, then wait with a
        // budget far larger than the test could ever tolerate burning.
        let mut req = comm.irecv(2, 42).unwrap();
        let started = std::time::Instant::now();
        let err = req.wait_timeout(Duration::from_secs(30)).unwrap_err();
        let elapsed = started.elapsed();
        assert_eq!(
            err.class,
            ErrClass::ProcTerminated,
            "dead-peer wait must fail typed, not time out: {err}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "the verdict must come from the dead set, not deadline expiry: {elapsed:?}"
        );
        // The comm still names the dead rank, so its teardown cannot be
        // collective; it is dropped, not freed.
        session.finalize().unwrap();
        Some(err.class)
    });
    std::thread::sleep(Duration::from_millis(400));
    world.kill_proc(&mpi_sessions_repro::pmix::ProcId::new(nspace, 2));
    let out = handle.join().unwrap();
    assert_eq!(out[0], Some(ErrClass::ProcTerminated));
    // The victim never constructed past the comm, so cid counters agree
    // only among the survivors — skip the symmetric agreement list.
    world.finish(None, Vec::new()).assert_clean();
}
