//! Property-based tests over the full stack: randomized communication
//! patterns and group algebra must preserve the library's invariants.

use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::pmix::nspace::NamespaceRegistry;
use mpi_sessions_repro::pmix::ProcId;
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn run_job<T, F>(np: u32, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(prrte::ProcCtx) -> T + Send + Sync + 'static,
{
    Launcher::new(SimTestbed::tiny(1, np))
        .spawn(JobSpec::new(np), f)
        .join()
        .expect("job")
}

fn world_comm(ctx: &prrte::ProcCtx, tag: &str) -> (Session, Comm) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    let c = Comm::create_from_group(&g, tag).unwrap();
    (s, c)
}

/// Deterministic Fisher–Yates permutation of `0..k` from a proptest-drawn
/// seed (the vendored proptest has no `prop_shuffle`).
fn perm(seed: u64, k: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..k).collect();
    let mut s = seed | 1;
    for i in (1..k).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case launches a multi-threaded simulated job
        .. ProptestConfig::default()
    })]

    /// Any batch of tagged messages 0→1, sent in any order and received in
    /// any (tag-selective) order, is delivered intact: matching never
    /// mixes up tags or payloads.
    #[test]
    fn prop_out_of_order_matching_is_sound(
        perm in proptest::sample::subsequence((0u8..12).collect::<Vec<_>>(), 1..12)
    ) {
        let send_order = perm.clone();
        let out = run_job(2, move |ctx| {
            let (s, c) = world_comm(&ctx, "prop-match");
            let result = if ctx.rank() == 0 {
                for &t in &send_order {
                    c.send_t(1, t as i32, &[t as u32 * 1000 + 7]).unwrap();
                }
                Vec::new()
            } else {
                // Receive in reverse-sorted tag order regardless of send order.
                let mut tags = send_order.clone();
                tags.sort_unstable();
                tags.reverse();
                let mut got = Vec::new();
                for &t in &tags {
                    let (v, st) = c.recv_t::<u32>(0, t as i32).unwrap();
                    got.push((st.tag, v[0]));
                }
                got
            };
            c.free().unwrap();
            s.finalize().unwrap();
            result
        });
        for (tag, payload) in &out[1] {
            prop_assert_eq!(*payload, *tag as u32 * 1000 + 7);
        }
        prop_assert_eq!(out[1].len(), perm.len());
    }

    /// Allreduce(sum) equals the local sum of contributions for any
    /// process count and payload.
    #[test]
    fn prop_allreduce_matches_serial_sum(
        np in 1u32..6,
        values in proptest::collection::vec(0i64..1000, 1..8)
    ) {
        let len = values.len();
        let vals = values.clone();
        let out = run_job(np, move |ctx| {
            let (s, c) = world_comm(&ctx, "prop-ar");
            // Every rank contributes values scaled by (rank+1).
            let mine: Vec<i64> =
                vals.iter().map(|v| v * (ctx.rank() as i64 + 1)).collect();
            let got = coll::allreduce_t(&c, ReduceOp::Sum, &mine).unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
            got
        });
        let scale: i64 = (1..=np as i64).sum();
        for rank_out in &out {
            prop_assert_eq!(rank_out.len(), len);
            for (i, v) in rank_out.iter().enumerate() {
                prop_assert_eq!(*v, values[i] * scale);
            }
        }
    }

    /// Splitting by any coloring yields communicators that partition the
    /// parent: sizes sum to the parent size and each subgroup agrees on
    /// its own reduction.
    #[test]
    fn prop_split_partitions_parent(colors in proptest::collection::vec(0u32..3, 4)) {
        let cols = colors.clone();
        let out = run_job(4, move |ctx| {
            let (s, c) = world_comm(&ctx, "prop-split");
            let my_color = cols[ctx.rank() as usize];
            let sub = c.split(my_color, ctx.rank()).unwrap();
            let members = coll::allreduce_t(&sub, ReduceOp::Sum, &[1u32]).unwrap()[0];
            let size = sub.size();
            sub.free().unwrap();
            c.free().unwrap();
            s.finalize().unwrap();
            (my_color, size, members)
        });
        let mut total = 0;
        for (color, size, members) in &out {
            prop_assert_eq!(*members, *size, "allreduce within split saw wrong membership");
            let expected = colors.iter().filter(|c| *c == color).count() as u32;
            prop_assert_eq!(*size, expected);
            total += 1;
        }
        prop_assert_eq!(total, 4);
    }

    /// Sessions communicators created under any interleaving of table
    /// "burn" noise still agree on the exCID across ranks.
    #[test]
    fn prop_excid_agreement_under_table_skew(burns in proptest::collection::vec(0usize..4, 3)) {
        let skew = burns.clone();
        let out = run_job(3, move |ctx| {
            let (s, c0) = world_comm(&ctx, "prop-skew-base");
            // Burn a rank-dependent number of local CIDs.
            let selfg = s.group_from_pset("mpi://self").unwrap();
            let mut burners = Vec::new();
            for i in 0..skew[ctx.rank() as usize] {
                burners.push(Comm::create_from_group(&selfg, &format!("b{i}")).unwrap());
            }
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "prop-skew").unwrap();
            let excid = c.excid().unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            for b in burners { b.free().unwrap(); }
            c0.free().unwrap();
            s.finalize().unwrap();
            (excid, sum)
        });
        prop_assert_eq!(out[0].1, 3);
        prop_assert_eq!(out[0].0, out[1].0);
        prop_assert_eq!(out[1].0, out[2].0);
    }

    /// Nonblocking setup is completion-order agnostic: a batch of
    /// concurrently issued `icomm_create_from_group` requests, claimed in
    /// an *independently shuffled* order on each rank, always completes
    /// (no deadlock), agrees on every exCID across ranks, and keeps the
    /// per-communicator channels isolated (tagged traffic never crosses).
    #[test]
    fn prop_async_setup_any_completion_order_agrees(
        seeds in proptest::collection::vec(0u64..u64::MAX, 2)
    ) {
        const K: usize = 4;
        let schedules: Vec<Vec<usize>> = seeds.iter().map(|&s| perm(s, K)).collect();
        let out = run_job(2, move |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let mut reqs: Vec<_> = (0..K)
                .map(|i| Some(Comm::icomm_create_from_group(&g, &format!("prop-async{i}")).unwrap()))
                .collect();
            // Claim in this rank's shuffled order: the collectives complete
            // server-side regardless of who waits what first.
            let mut comms: Vec<Option<Comm>> = (0..K).map(|_| None).collect();
            for &i in &schedules[ctx.rank() as usize] {
                comms[i] = Some(reqs[i].take().unwrap().wait().unwrap());
            }
            let comms: Vec<Comm> = comms.into_iter().map(|c| c.unwrap()).collect();
            let excids: Vec<_> = comms.iter().map(|c| c.excid().unwrap()).collect();
            let mut cids: Vec<u16> = comms.iter().map(|c| c.local_cid()).collect();
            cids.sort_unstable();
            cids.dedup();
            assert_eq!(cids.len(), K, "local CIDs must be distinct per process");
            let peer = 1 - ctx.rank();
            for (i, c) in comms.iter().enumerate() {
                let msg = format!("pa{i}r{}", ctx.rank());
                let (reply, st) = c
                    .sendrecv(peer, i as i32, msg.as_bytes(), peer as i32, i as i32)
                    .unwrap();
                assert_eq!(reply, format!("pa{i}r{peer}").as_bytes());
                assert_eq!(st.tag, i as i32);
            }
            for c in comms {
                c.free().unwrap();
            }
            s.finalize().unwrap();
            excids
        });
        prop_assert_eq!(&out[0], &out[1], "ranks disagree on exCIDs");
        let mut uniq = out[0].clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), K, "concurrent constructs must get distinct exCIDs");
    }

    /// Any interleaving of pset define/update/delete/GC keeps the emitted
    /// epoch stream strictly monotonic and never resurrects a tombstoned
    /// pset: a deleted name stays unresolvable until (and unless) a later
    /// define re-creates it.
    #[test]
    fn prop_registry_interleaving_is_monotonic_and_tombstones_stay_dead(
        ops in proptest::collection::vec(0u8..16, 1..80)
    ) {
        let reg = NamespaceRegistry::new();
        let epochs: Arc<Mutex<Vec<u64>>> = Arc::default();
        let sink = epochs.clone();
        reg.add_pset_listener(Box::new(move |c| sink.lock().unwrap().push(c.epoch)));
        let member = vec![ProcId::new("prop", 0)];
        // Model: per-name liveness; the registry must agree after every op.
        let mut live = [false; 4];
        for code in ops {
            let (op, w) = (code % 4, (code / 4) as usize);
            let name = format!("prop://{w}");
            match op {
                0 => {
                    reg.define_pset(&name, member.clone());
                    live[w] = true;
                }
                1 => {
                    let r = reg.update_pset_membership(&name, member.clone(), None);
                    // Updating a live pset succeeds; a deleted or unknown
                    // one errors instead of resurrecting the name.
                    prop_assert_eq!(r.is_ok(), live[w]);
                }
                2 => {
                    reg.undefine_pset(&name);
                    live[w] = false;
                }
                _ => {
                    reg.gc_tombstones();
                }
            }
            for (i, l) in live.iter().enumerate() {
                let resolvable = reg.pset_members(&format!("prop://{i}")).is_ok();
                prop_assert_eq!(resolvable, *l, "pset prop://{} resurrection/loss", i);
            }
        }
        prop_assert_eq!(reg.num_psets(), live.iter().filter(|l| **l).count());
        let epochs = epochs.lock().unwrap();
        prop_assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "emitted epochs must be strictly increasing: {:?}",
            &*epochs
        );
    }

    /// The faults pset under any interleaving of kills (failure bridge:
    /// prune every pset), graceful retires (launcher: prune just the
    /// survivors pset), and repair-side reads stays (a) a subset of the
    /// world it was defined over, (b) strictly epoch-monotonic, and
    /// (c) free of resurrection: once a proc is tombstoned by either
    /// removal path — including redundant removals racing each other —
    /// no later operation ever puts it back among the survivors.
    #[test]
    fn prop_faults_pset_shrinks_monotonically_and_never_resurrects(
        ops in proptest::collection::vec(0u8..18, 1..100)
    ) {
        let reg = NamespaceRegistry::new();
        let epochs: Arc<Mutex<Vec<u64>>> = Arc::default();
        let sink = epochs.clone();
        reg.add_pset_listener(Box::new(move |c| sink.lock().unwrap().push(c.epoch)));
        let world: Vec<ProcId> = (0..6).map(|r| ProcId::new("prop-ft", r)).collect();
        let survivors = mpi_sessions_repro::pmix::survivors_pset_name("prop-ft");
        reg.define_pset(&survivors, world.clone());
        let mut tombstoned = [false; 6];
        for code in ops {
            let (op, w) = (code % 3, (code / 3) as usize);
            let p = &world[w];
            match op {
                0 => {
                    // Kill: the failure bridge prunes every pset holding p.
                    reg.remove_from_psets(p, None);
                    tombstoned[w] = true;
                }
                1 => {
                    // Graceful retire: prune only the survivors pset.
                    reg.remove_proc_from_pset(&survivors, p);
                    tombstoned[w] = true;
                }
                _ => {
                    // Repair-side read: the versioned snapshot a
                    // `repair_via_pset` pins must be stable across an
                    // immediate re-read (no phantom epoch bumps).
                    let (e1, m1) = reg.pset_members_versioned(&survivors).unwrap();
                    let (e2, m2) = reg.pset_members_versioned(&survivors).unwrap();
                    prop_assert_eq!(e1, e2, "read-only ops must not move the epoch");
                    prop_assert_eq!(&*m1, &*m2);
                }
            }
            let (_, members) = reg.pset_members_versioned(&survivors).unwrap();
            for m in members.iter() {
                prop_assert!(world.contains(m), "survivors must stay ⊆ world, found {}", m);
            }
            for (i, dead) in tombstoned.iter().enumerate() {
                prop_assert!(
                    !(*dead && members.contains(&world[i])),
                    "tombstoned proc {} resurrected into the survivors pset",
                    &world[i]
                );
            }
        }
        let epochs = epochs.lock().unwrap();
        prop_assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "emitted epochs must be strictly increasing: {:?}",
            &*epochs
        );
    }
}
