//! The interleaving test layer for the nonblocking setup engine
//! (`SetupRequest` / `ProgressEngine`): request-based session, group and
//! communicator construction must complete under *any* progress schedule
//! — explicit `test` stepping, the per-process engine, or `wait` — with
//! cross-rank CID agreement, per-comm channel isolation, and no deadlock.
//!
//! The `ProgressDriver` harness here single-steps the state machines in
//! arbitrary per-rank orders; `tests/properties.rs` feeds it randomized
//! schedules via proptest, and the chaos suite injects faults between the
//! same stages (`async_setup` scenario, `request-terminal` invariant).

use mpi_sessions_repro::mpi::cid::ExCid;
use mpi_sessions_repro::mpi::instance::MpiProcess;
use mpi_sessions_repro::mpi::request::{ReqInner, Request};
use mpi_sessions_repro::mpi::{Comm, ErrHandler, Info, Session, SetupRequest, ThreadLevel};
use mpi_sessions_repro::prrte::{JobSpec, Launcher};
use mpi_sessions_repro::simnet::SimTestbed;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

// ----------------------------------------------------------------------
// ProgressDriver: a harness that single-steps the setup engine
// ----------------------------------------------------------------------

/// Drives a batch of in-flight [`SetupRequest`]s one explicit `test` step
/// at a time, in a caller-chosen order — the scheduler the proptest layer
/// permutes. Completion order across ranks is entirely decoupled: every
/// request's opening exchange went on the wire at issue time, so stepping
/// choices only decide *who polls what when*, never whether peers can
/// make progress.
struct ProgressDriver {
    slots: Vec<Option<SetupRequest<Comm>>>,
    /// Stage-name transition log per request (harness introspection).
    stages: Vec<Vec<&'static str>>,
}

impl ProgressDriver {
    fn new(reqs: Vec<SetupRequest<Comm>>) -> Self {
        let stages = reqs.iter().map(|r| vec![r.stage()]).collect();
        Self { slots: reqs.into_iter().map(Some).collect(), stages }
    }

    /// One `test` step of request `i`; true once it is terminal.
    fn step(&mut self, i: usize) -> bool {
        let Some(req) = self.slots[i].as_mut() else { return true };
        let done = req.test().expect("setup request failed");
        let stage = req.stage();
        if self.stages[i].last() != Some(&stage) {
            self.stages[i].push(stage);
        }
        done
    }

    /// Cycle through `schedule` until every request completes, then claim
    /// the communicators in index order. Panics (deadlock) if a bounded
    /// number of sweeps does not finish the batch.
    fn run(&mut self, schedule: &[usize]) -> Vec<Comm> {
        let mut remaining: usize = self.slots.iter().filter(|s| s.is_some()).count();
        for _sweep in 0..200_000 {
            let before = remaining;
            for &i in schedule {
                if self.slots[i].is_some() && !self.stages[i].contains(&"done") && self.step(i) {
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                return self
                    .slots
                    .iter_mut()
                    .map(|s| s.take().unwrap().wait().expect("claim completed comm"))
                    .collect();
            }
            if remaining == before {
                // Nothing completed this sweep: the exchanges are still in
                // flight on the fabric; back off instead of busy-spinning.
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        panic!("ProgressDriver: schedule {schedule:?} did not complete (deadlock?)");
    }
}

fn world_base(ctx: &prrte::ProcCtx) -> (Session, mpi_sessions_repro::mpi::MpiGroup) {
    let s = Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap();
    let g = s.group_from_pset("mpi://world").unwrap();
    (s, g)
}

/// Distinct payload per comm index; any cross-comm mixup changes it.
fn ping(c: &Comm, i: usize) {
    let peer = 1 - c.rank();
    let me = c.rank();
    let msg = format!("comm{i}-from{me}");
    let (reply, _) = c.sendrecv(peer, i as i32, msg.as_bytes(), peer as i32, i as i32).unwrap();
    assert_eq!(reply, format!("comm{i}-from{peer}").as_bytes());
}

// ----------------------------------------------------------------------
// Engine-driven completion
// ----------------------------------------------------------------------

/// A batch of `icomm_create_from_group` requests completes purely under
/// `MpiProcess::progress` (no `wait`, no explicit `test`), the engine
/// prunes them as they turn terminal, and the claimed communicators agree
/// on exCIDs across ranks and carry isolated channels.
#[test]
fn engine_progress_completes_concurrent_icomms() {
    const K: usize = 4;
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let out = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, g) = world_base(&ctx);
            let process = MpiProcess::obtain(&ctx);
            let reqs: Vec<SetupRequest<Comm>> = (0..K)
                .map(|i| Comm::icomm_create_from_group(&g, &format!("eng{i}")).unwrap())
                .collect();
            assert_eq!(process.progress_engine().in_flight(), K, "all registered");
            let mut sweeps = 0u64;
            while process.progress() > 0 {
                sweeps += 1;
                assert!(sweeps < 200_000, "engine never drained {K} requests");
                std::thread::sleep(Duration::from_micros(50));
            }
            let comms: Vec<Comm> = reqs
                .into_iter()
                .map(|r| {
                    assert!(r.is_complete(), "engine left a request in flight");
                    assert_eq!(r.stage(), "done");
                    assert!(r.steps() > 0, "request never stepped");
                    // `wait` after engine completion claims without blocking.
                    r.wait().unwrap()
                })
                .collect();
            let excids: Vec<_> = comms.iter().map(|c| c.excid().unwrap()).collect();
            for (i, c) in comms.iter().enumerate() {
                ping(c, i);
            }
            let cids: Vec<u16> = comms.iter().map(|c| c.local_cid()).collect();
            let mut uniq = cids.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), K, "local CIDs must be distinct per process: {cids:?}");
            for c in comms {
                c.free().unwrap();
            }
            assert_eq!(process.progress_engine().in_flight(), 0);
            s.finalize().unwrap();
            excids
        })
        .join()
        .unwrap();
    assert_eq!(out[0], out[1], "ranks must agree on every exCID");
    let mut uniq = out[0].clone();
    uniq.sort();
    uniq.dedup();
    assert_eq!(uniq.len(), K, "concurrent constructs must get distinct exCIDs");
}

/// Opposed per-rank schedules: rank 0 polls its requests forward, rank 1
/// polls the same collectives backward. The constructions are collective,
/// the polling is not — every schedule must complete with agreement.
#[test]
fn opposed_step_schedules_still_agree() {
    const K: usize = 4;
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    let out = launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, g) = world_base(&ctx);
            let reqs: Vec<SetupRequest<Comm>> = (0..K)
                .map(|i| Comm::icomm_create_from_group(&g, &format!("sched{i}")).unwrap())
                .collect();
            let schedule: Vec<usize> = if ctx.rank() == 0 {
                (0..K).collect()
            } else {
                (0..K).rev().collect()
            };
            let mut driver = ProgressDriver::new(reqs);
            let comms = driver.run(&schedule);
            // Stage transitions are monotone through the state machine.
            for log in &driver.stages {
                let order = ["begin", "group", "commit", "done"];
                let idx: Vec<usize> =
                    log.iter().map(|s| order.iter().position(|o| o == s).unwrap()).collect();
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "stage log not monotone: {log:?}");
                assert_eq!(log.last(), Some(&"done"));
            }
            let excids: Vec<_> = comms.iter().map(|c| c.excid().unwrap()).collect();
            for (i, c) in comms.iter().enumerate() {
                ping(c, i);
            }
            for c in comms {
                c.free().unwrap();
            }
            s.finalize().unwrap();
            excids
        })
        .join()
        .unwrap();
    assert_eq!(out[0], out[1]);
}

/// `Session::init_i` and `Session::igroup_from_pset` run through the same
/// machinery: staged, introspectable, and claimable mid-pipeline — a
/// session whose init request is still nominally in flight elsewhere in
/// the batch can already resolve groups.
#[test]
fn init_i_and_igroup_stage_through_engine() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let mut ireq =
                Session::init_i(&ctx, ThreadLevel::Multiple, ErrHandler::Return, &Info::null());
            assert_eq!(ireq.op(), "session_init");
            // `issue` already ran the `resources` stage synchronously.
            assert_eq!(ireq.stage(), "handle");
            while !ireq.test().unwrap() {}
            let s = ireq.wait().unwrap();
            assert_eq!(s.thread_level(), ThreadLevel::Multiple);

            let mut greq = s.igroup_from_pset("mpi://world");
            assert_eq!(greq.op(), "group_from_pset");
            while !greq.test().unwrap() {}
            let g = greq.wait().unwrap();
            assert_eq!(g.size(), 2);

            let c = Comm::create_from_group(&g, "igroup-comm").unwrap();
            ping(&c, 0);
            c.free().unwrap();
            s.finalize().unwrap();
        })
        .join()
        .unwrap();
}

// ----------------------------------------------------------------------
// Pipelining: concurrent constructions coalesce PGCID round trips
// ----------------------------------------------------------------------

fn count_pgcid_requests(launcher: &Launcher) -> usize {
    launcher
        .universe()
        .fabric()
        .obs()
        .spans_snapshot()
        .iter()
        .filter(|s| s.name == "pgcid.request")
        .count()
}

/// The acceptance claim of the async engine: with the PGCID block size
/// forced to 1 (every construct needs its own grant), K concurrent
/// `icomm_create_from_group` requests complete with strictly fewer
/// `pgcid.request` round trips than K sequential blocking constructs,
/// because all fan-ins (and their PGCID demand) are on the wire before
/// the first wait and the per-server coalescer batches them.
#[test]
fn concurrent_icomms_coalesce_pgcid_round_trips() {
    const K: usize = 8;

    let run = |nonblocking: bool| -> (usize, Vec<Vec<ExCid>>) {
        let launcher = Launcher::new(SimTestbed::tiny(2, 1));
        launcher.universe().set_pgcid_block(1);
        let excids = launcher
            .spawn(JobSpec::new(2), move |ctx| {
                let (s, g) = world_base(&ctx);
                let comms: Vec<Comm> = if nonblocking {
                    let reqs: Vec<SetupRequest<Comm>> = (0..K)
                        .map(|i| Comm::icomm_create_from_group(&g, &format!("pipe{i}")).unwrap())
                        .collect();
                    reqs.into_iter().map(|r| r.wait().unwrap()).collect()
                } else {
                    (0..K)
                        .map(|i| Comm::create_from_group(&g, &format!("pipe{i}")).unwrap())
                        .collect()
                };
                let excids: Vec<ExCid> = comms.iter().map(|c| c.excid().unwrap()).collect();
                for (i, c) in comms.iter().enumerate() {
                    ping(c, i);
                }
                for c in comms {
                    c.free().unwrap();
                }
                s.finalize().unwrap();
                excids
            })
            .join()
            .unwrap();
        (count_pgcid_requests(&launcher), excids)
    };

    let (seq_reqs, seq_excids) = run(false);
    let (pipe_reqs, pipe_excids) = run(true);
    assert_eq!(seq_excids[0], seq_excids[1]);
    assert_eq!(pipe_excids[0], pipe_excids[1]);
    assert!(seq_reqs >= K, "sequential blocking run must pay one round trip per construct");
    assert!(
        pipe_reqs < seq_reqs,
        "pipelined constructs must coalesce PGCID round trips: {pipe_reqs} vs {seq_reqs}"
    );
    assert!(
        pipe_reqs < K,
        "{K} overlapped constructs should need fewer than {K} round trips, got {pipe_reqs}"
    );
}

// ----------------------------------------------------------------------
// wait_all out-of-order progress (the fixed latent blocking assumption)
// ----------------------------------------------------------------------

/// Regression for the issue-order `wait_all` livelock: request A (issued
/// first) completes only after a flag that request B's hook sets. The old
/// implementation waited request 0 to completion before ever polling
/// request 1, so A's hook span forever; round-robin polling completes the
/// set. Run under a watchdog so the pre-fix behavior fails fast instead
/// of hanging the suite.
#[test]
fn wait_all_progresses_requests_out_of_issue_order() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 1));
    launcher
        .spawn(JobSpec::new(1), |ctx| {
            let pml = MpiProcess::obtain(&ctx).pml().clone();
            let flag = Arc::new(AtomicBool::new(false));
            let fa = flag.clone();
            let a = ReqInner::with_hook(Box::new(move || Ok(fa.load(Ordering::SeqCst))));
            let fb = flag.clone();
            let mut polls = 0u32;
            let b = ReqInner::with_hook(Box::new(move || {
                polls += 1;
                if polls >= 3 {
                    fb.store(true, Ordering::SeqCst);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }));
            let reqs = vec![Request::new(a, pml.clone()), Request::new(b, pml)];
            let (tx, rx) = mpsc::channel();
            let waiter = std::thread::spawn(move || {
                let _ = tx.send(Request::wait_all(reqs));
            });
            let statuses = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("wait_all livelocked on out-of-order completion")
                .expect("wait_all failed");
            waiter.join().unwrap();
            assert_eq!(statuses.len(), 2);
        })
        .join()
        .unwrap();
}

// ----------------------------------------------------------------------
// Cancellation: dropping in-flight requests releases every resource
// ----------------------------------------------------------------------

/// Dropping an in-flight `SetupRequest` (symmetrically on every rank)
/// completes the collective exchange, then releases the would-be
/// communicator: local CIDs return to the table, the PGCID family is
/// destructed, later constructs work, and teardown audits zero leaks.
/// Every issued request reaches a terminal `req.*` event — the
/// `request-terminal` invariant the chaos layer checks under faults.
#[test]
fn dropping_inflight_requests_releases_cids_and_pgcids() {
    const K: usize = 6;
    const DROP: [usize; 2] = [0, 3];
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            let (s, g) = world_base(&ctx);
            let mut reqs: Vec<Option<SetupRequest<Comm>>> = (0..K)
                .map(|i| Some(Comm::icomm_create_from_group(&g, &format!("drop{i}")).unwrap()))
                .collect();
            // Abandon a third of the batch mid-flight, same indices on
            // every rank (cancellation is collective).
            for i in DROP {
                drop(reqs[i].take());
            }
            let comms: Vec<Comm> =
                reqs.into_iter().flatten().map(|r| r.wait().unwrap()).collect();
            assert_eq!(comms.len(), K - DROP.len());
            for (i, c) in comms.iter().enumerate() {
                ping(c, i);
            }
            // The table slots the cancelled constructs briefly claimed are
            // reusable: a fresh construct still succeeds and communicates.
            let fresh = Comm::create_from_group(&g, "after-drop").unwrap();
            ping(&fresh, 99);
            fresh.free().unwrap();
            for c in comms {
                c.free().unwrap();
            }
            s.finalize().unwrap();
        })
        .join()
        .unwrap();

    let obs = launcher.universe().fabric().obs();
    assert_eq!(
        obs.sum_counters("instance", "cids_leaked_at_teardown"),
        0,
        "cancelled constructs leaked CID table entries"
    );
    assert_eq!(obs.sum_counters("req", "cancelled"), (DROP.len() * 2) as u64);

    // request-terminal: every issued request id reached exactly one
    // terminal event (completed, failed, or cancelled claims the value of
    // a completed one — pair on ids).
    let issued: Vec<(String, u64)> = obs
        .events_named("req.issued")
        .iter()
        .map(|e| (e.process.clone(), e.attr("id").and_then(|a| a.as_u64()).unwrap()))
        .collect();
    assert_eq!(issued.len(), K * 2, "one req.issued per i-variant per rank");
    let mut terminal: Vec<(String, u64)> = Vec::new();
    for name in ["req.completed", "req.failed"] {
        terminal.extend(
            obs.events_named(name)
                .iter()
                .map(|e| (e.process.clone(), e.attr("id").and_then(|a| a.as_u64()).unwrap())),
        );
    }
    for key in &issued {
        assert!(
            terminal.contains(key),
            "request {key:?} was issued but never reached a terminal event"
        );
    }
}
