//! Chaos suite: seeded fault-injection sweeps over the full stack.
//!
//! Each scenario boots a [`ChaosWorld`] (a DVM with a fault plan armed on
//! its simnet fabric), drives a real PMIx + MPI Sessions workload through
//! the fault, asserts the scenario-specific recovery path, and then runs
//! the cross-layer invariant checker over the observability record.
//!
//! Determinism contract: every fault decision is a pure function of
//! `(seed, rule, message coordinates)`, scenario namespaces are pinned via
//! `spawn_named`, and fault windows cover only the protocol-ordered prefix
//! of each endpoint pair's traffic — so the same seed reproduces a
//! byte-identical fault trace on every run (asserted below).
//!
//! Extra seeds can be swept without recompiling:
//! `CHAOS_SEEDS=90,91,92 cargo test --test chaos_suite`.

use chaos::{ChaosWorld, FaultClass, FaultPlan, FaultRule, RuleScope, RunReport, SeqWindow};
use mpi_sessions_repro::mpi::{coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel};
use mpi_sessions_repro::pmix::ProcId;
use mpi_sessions_repro::prrte::{JobSpec, ProcCtx};
use mpi_sessions_repro::simnet::SimTestbed;
use std::time::Duration;

fn new_session(ctx: &ProcCtx) -> Session {
    Session::init(ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null()).unwrap()
}

fn all_procs(ctx: &ProcCtx) -> Vec<ProcId> {
    let ns = ctx.proc().nspace().to_owned();
    (0..ctx.size()).map(|r| ProcId::new(ns.as_str(), r)).collect()
}

/// Raw obs process names of the given ranks (for the cid-agreement check).
fn rank_processes(world: &ChaosWorld, ranks: std::ops::Range<u32>) -> Vec<String> {
    let base = world.universe().fabric().base_endpoint_id();
    ranks.map(|r| (base + world.rank_rel(r)).to_string()).collect()
}

// ---------------------------------------------------------------------------
// Scenarios: one per fault class, each with a distinct recovery path.
// ---------------------------------------------------------------------------

/// Drop: both directions of the first inter-server contribution are lost.
/// Every rank's fence must *fail* (not hang); an application-level retry
/// (fresh epoch) then succeeds and the MPI data plane is unaffected.
fn run_drop(seed: u64) -> RunReport {
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Drop,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(1),
        )],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-drop-{seed}");
    let out = world
        .launcher()
        .spawn_named(&nspace, JobSpec::new(4), |ctx| {
            let all = all_procs(&ctx);
            // Stage-2 contributions are dropped in both directions: both
            // servers wait on a peer contribution that never arrives, so
            // the fence must surface an error on every rank.
            let first = ctx.pmix().fence_timeout(&all, false, Duration::from_millis(1200));
            assert!(first.is_err(), "lost contributions must fail the fence, not hang it");
            // Retry runs under a fresh epoch; its contributions are past
            // the drop window and go through.
            ctx.pmix().fence(&all, false).unwrap();
            let s = new_session(&ctx);
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "post-drop").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert_eq!(report.trace.len(), 2, "one lost contribution per direction");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Drop && r.pair_seq == 0));
    report.assert_clean();
    report
}

/// Delay: a seeded subset of the first inter-server messages is delivered
/// late. Nothing fails — the protocol absorbs the latency; the invariant
/// checker confirms the handshake/PGCID bookkeeping is unchanged.
fn run_delay(seed: u64) -> RunReport {
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(25)
        .with_per_mille(700)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-delay-{seed}");
    let out = world
        .launcher()
        .spawn_named(&nspace, JobSpec::new(4), |ctx| {
            let all = all_procs(&ctx);
            ctx.pmix().fence(&all, false).unwrap();
            let s = new_session(&ctx);
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "delayed").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert!(
        report.trace.iter().all(|r| r.class == FaultClass::Delay && r.detail == 25),
        "only delays were planned"
    );
    report.assert_clean();
    report
}

/// Duplicate: the first inter-server contributions are delivered twice.
/// Contribution handling is idempotent, so both fences and the MPI phase
/// complete exactly once each (fault counters vs. trace checked by the
/// invariant layer).
fn run_duplicate(seed: u64) -> RunReport {
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Duplicate,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-dup-{seed}");
    let out = world
        .launcher()
        .spawn_named(&nspace, JobSpec::new(4), |ctx| {
            let all = all_procs(&ctx);
            // Two back-to-back fences: both contribution exchanges are
            // duplicated on the wire.
            ctx.pmix().fence(&all, false).unwrap();
            ctx.pmix().fence(&all, false).unwrap();
            let s = new_session(&ctx);
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "deduped").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert_eq!(report.trace.len(), 4, "two fences x two directions duplicated");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Duplicate));
    report.assert_clean();
    report
}

/// Kill: the first node0→node1 server contribution triggers the death of
/// rank 3's endpoint. Survivors get the failure event, finalize, re-init a
/// fresh session over the surviving group and keep computing — the
/// paper's §II-C roll-forward recovery path, under the harness.
fn run_kill(seed: u64) -> RunReport {
    let mut scope = RuleScope::pair_within(1, 3);
    scope.dst_in = Some((2, 3)); // only the node0→node1 direction fires
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(FaultClass::Kill, scope, SeqWindow::exactly(0)).with_kill_rel(6)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-kill-{seed}");
    let out = world
        .launcher()
        .spawn_named(&nspace, JobSpec::new(4), |ctx| {
            let session = new_session(&ctx);
            let notifier = session.failure_notifier().unwrap();
            let all = all_procs(&ctx);
            // The fence's inter-server exchange pulls the trigger. The
            // failure may race the fence's own completion, so either
            // outcome is acceptable here — the invariants below are not.
            let _ = ctx.pmix().fence_timeout(&all, false, Duration::from_secs(5));
            if ctx.rank() == 3 {
                // The victim: its endpoint is dead. Wait until the failure
                // is globally visible, then bow out (no finalize — the
                // process is gone as far as the runtime is concerned).
                for _ in 0..500 {
                    let sg = session.surviving_group("mpi://world").unwrap();
                    if sg.iter().all(|m| m.proc.rank() != 3) {
                        return 0;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                panic!("victim never observed its own failure");
            }
            let victim = notifier.next_timeout(Duration::from_secs(10)).expect("failure event");
            assert_eq!(victim.rank(), 3);
            // Roll forward: finalize, re-init, rebuild over the survivors.
            session.finalize().unwrap();
            let session2 = new_session(&ctx);
            let survivors = session2.surviving_group("mpi://world").unwrap();
            assert_eq!(survivors.size(), 3);
            let c = Comm::create_from_group(&survivors, "post-kill").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            session2.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![3, 3, 3, 0]);
    let cid = rank_processes(&world, 0..3); // survivors only
    let report = world.finish(Some(true), cid);
    assert_eq!(report.trace.len(), 1, "exactly one kill trigger");
    let kill = &report.trace[0];
    assert_eq!(kill.class, FaultClass::Kill);
    assert_eq!(kill.detail, 6, "victim is rank 3's endpoint (rel id 6)");
    assert_eq!((kill.rel_src, kill.rel_dst, kill.pair_seq), (1, 2, 0));
    report.assert_clean();
    report
}

/// Partition: node 0 and node 1 are split for the first message crossing
/// the cut, then the partition heals. Ranks retry the fence until the
/// fabric lets it through.
fn run_partition(seed: u64) -> RunReport {
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Partition,
            RuleScope::pair_within(1, 3).and_crossing(vec![0], vec![1]),
            SeqWindow::first(1),
        )],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-part-{seed}");
    let out = world
        .launcher()
        .spawn_named(&nspace, JobSpec::new(4), |ctx| {
            let all = all_procs(&ctx);
            // Fence until the partition heals.
            let mut attempts = 0u32;
            loop {
                match ctx.pmix().fence_timeout(&all, false, Duration::from_millis(1200)) {
                    Ok(()) => break,
                    Err(_) => {
                        attempts += 1;
                        assert!(attempts < 5, "partition never healed");
                    }
                }
            }
            assert!(attempts >= 1, "the partition must bite at least once");
            let s = new_session(&ctx);
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "healed").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert_eq!(report.trace.len(), 2, "one dropped crossing per direction");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Partition && r.pair_seq == 0));
    report.assert_clean();
    report
}

/// Elastic: pset churn (grow, kill, graceful retire, delete) under delayed
/// inter-server traffic. Every surviving rank follows the pset through its
/// epochs with [`ElasticComm`] rebuilds; the epoch-monotonicity,
/// rebuild-epoch and stale-epoch invariants then audit the whole run.
fn run_elastic(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::{ElasticComm, Rebuild};
    use std::sync::mpsc;

    const PSET: &str = "app://chaos-elastic";
    const STEP: Duration = Duration::from_secs(20);
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(20)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 4), plan);
    let nspace = format!("chaos-elastic-{seed}");
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let handle = world.launcher().spawn_named(
        &nspace,
        JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]),
        move |ctx| {
            let session = new_session(&ctx);
            let mut ec = ElasticComm::establish(&session, PSET, STEP).unwrap();
            loop {
                let comm = ec.comm().expect("member has a communicator");
                let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
                tx.send((ctx.rank(), ec.epoch(), sum)).unwrap();
                match ec.next_rebuild(STEP) {
                    Ok(Rebuild::Rebuilt { .. }) => continue,
                    Ok(Rebuild::Retired { .. }) | Ok(Rebuild::Deleted { .. }) => break,
                    Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
                }
            }
            session.finalize().unwrap();
            ctx.rank()
        },
    );
    let ctl = handle.ctl();
    let expect = |n: usize, epoch: u64, sum: u32| {
        for _ in 0..n {
            let (rank, e, s) = rx.recv_timeout(STEP).expect("ack before timeout");
            assert_eq!((e, s), (epoch, sum), "rank {rank} at wrong epoch/membership");
        }
    };
    expect(4, 1, 4); // epoch 1: launch-time definition
    assert_eq!(ctl.spawn_ranks(4, Some(PSET)), vec![4, 5, 6, 7]);
    expect(8, 2, 8); // epoch 2: grown to 8
    world.kill_proc(&ProcId::new(nspace.as_str(), 7));
    expect(7, 3, 7); // epoch 3: failure bridge shrank the pset
    ctl.retire_ranks(&[6], Some(PSET)).unwrap();
    expect(6, 4, 6); // epoch 4: graceful retire
    world.universe().registry().undefine_pset(PSET);
    let out = handle.join().unwrap();
    assert_eq!(out.len(), 7, "6 survivors + the killed rank's thread");
    // Ranks joined at different epochs, so cid counters legitimately
    // diverge — skip the symmetric cid-agreement list.
    let report = world.finish(None, Vec::new());
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Delay));
    report.assert_clean();
    report
}

/// Soak: sustained session/communicator churn — waves of init → group →
/// comm construct → allreduce → free → finalize against one persistent
/// runtime — with a partition biting the warm-up barrier, delayed
/// inter-server traffic, and a mid-churn kill. After the drain, every
/// lifecycle pool must be back at baseline: no local CIDs held, no PML
/// cache entries, registry tombstones reaped under the GC bound, and the
/// destructed comms' PGCIDs returned to the pool. This is the chaos twin
/// of the `fig_soak` harness: same leak-freedom gates, faults on.
fn run_soak(seed: u64) -> RunReport {
    use mpi_sessions_repro::pmix::nspace::GC_TOMBSTONE_THRESHOLD;
    use std::sync::mpsc;

    const WAVES: u32 = 8;
    const KILL_WAVE: u32 = 3; // the kill lands after this wave's acks
    const VICTIM: u32 = 3;
    let plan = FaultPlan::new(
        seed,
        vec![
            FaultRule::new(
                FaultClass::Partition,
                RuleScope::pair_within(1, 3).and_crossing(vec![0], vec![1]),
                SeqWindow::first(1),
            ),
            FaultRule::new(
                FaultClass::Delay,
                RuleScope::pair_within(1, 3),
                SeqWindow::first(2),
            )
            .with_delay_ms(15),
        ],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-soak-{seed}");
    let (tx, rx) = mpsc::channel::<(u32, u32, u32)>();
    let handle = world.launcher().spawn_named(&nspace, JobSpec::new(4), move |ctx| {
        let all = all_procs(&ctx);
        // Warm-up barrier absorbs the partition: retry until it heals.
        let mut attempts = 0u32;
        loop {
            match ctx.pmix().fence_timeout(&all, false, Duration::from_millis(1200)) {
                Ok(()) => break,
                Err(_) => {
                    attempts += 1;
                    assert!(attempts < 5, "partition never healed");
                }
            }
        }
        assert!(attempts >= 1, "the partition must bite at least once");
        let mut waves_done = 0u32;
        for wave in 0..WAVES {
            let session = new_session(&ctx);
            if wave == KILL_WAVE + 1 {
                // Synchronize on the kill: every thread (including the
                // victim's) waits until the death is globally visible so
                // the next wave agrees on its membership.
                for i in 0..1000 {
                    let sg = session.surviving_group("mpi://world").unwrap();
                    if sg.iter().all(|m| m.proc.rank() != VICTIM) {
                        break;
                    }
                    assert!(i < 999, "kill never became visible");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            let group = session.surviving_group("mpi://world").unwrap();
            if group.iter().all(|m| m.proc.rank() != ctx.rank()) {
                // The victim: bow out without finalize — the runtime
                // already considers this process gone.
                return waves_done;
            }
            let c = Comm::create_from_group(&group, &format!("soak-w{wave}")).unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            session.finalize().unwrap();
            tx.send((ctx.rank(), wave, sum)).unwrap();
            waves_done += 1;
        }
        waves_done
    });
    let expect = |n: usize, wave: u32, sum: u32| {
        for _ in 0..n {
            let (rank, w, s) = rx.recv_timeout(Duration::from_secs(30)).expect("wave ack");
            assert_eq!((w, s), (wave, sum), "rank {rank} at wrong wave/membership");
        }
    };
    for wave in 0..=KILL_WAVE {
        expect(4, wave, 4);
    }
    world.kill_proc(&ProcId::new(nspace.as_str(), VICTIM));
    // Mid-churn registry churn: enough pset define/undefine cycles to force
    // the tombstone GC past its threshold while sessions keep rebuilding.
    let registry = world.universe().registry().clone();
    for i in 0..40 {
        let name = format!("soak://tmp-{i}");
        registry.define_pset(&name, vec![ProcId::new(nspace.as_str(), 0)]);
        registry.undefine_pset(&name);
    }
    for wave in (KILL_WAVE + 1)..WAVES {
        expect(3, wave, 3);
    }
    let out = handle.join().unwrap();
    assert_eq!(out, vec![8, 8, 8, 4], "survivors run all waves; the victim stops at the kill");
    // Leak-freedom gates: everything returned to baseline after the drain.
    let obs = world.universe().fabric().obs();
    assert_eq!(obs.sum_gauges("cid", "table_used"), 0, "leaked local CIDs");
    assert_eq!(obs.sum_gauges("pml", "cache_entries"), 0, "leaked handshake-cache entries");
    assert_eq!(
        obs.sum_counters("instance", "cids_leaked_at_teardown"),
        0,
        "a finalize tore down live CIDs"
    );
    assert!(
        registry.num_tombstones() <= GC_TOMBSTONE_THRESHOLD,
        "tombstones exceeded the GC bound"
    );
    assert!(obs.sum_counters("pmix", "psets_gced") > 0, "tombstone GC never fired");
    assert_eq!(
        obs.gauge_value("registry", "pmix", "psets_tombstoned") as usize,
        registry.num_tombstones(),
        "tombstone gauge out of sync with the table"
    );
    assert!(obs.sum_counters("cid", "released") > 0, "comm churn must release CIDs");
    assert!(
        obs.sum_counters("pmix", "pgcid_recycled") > 0,
        "destructed comms must recycle their PGCIDs"
    );
    // Ranks diverge at the kill, so skip the symmetric cid-agreement list.
    let report = world.finish(None, Vec::new());
    assert!(report
        .trace
        .iter()
        .all(|r| matches!(r.class, FaultClass::Partition | FaultClass::Delay)));
    report.assert_clean();
    report
}

/// Async setup: faults land *between the stages* of in-flight setup
/// requests. A partition bites the warm-up fence, delays stretch the
/// window between the `group` fan-in and fan-out stages of a pipelined
/// `icomm_create_from_group` batch, and a kill lands while a second batch
/// is parked between `issue` and `wait` — those requests must *fail*
/// (member terminated), never strand, whether they are waited or dropped
/// mid-flight. The `request-terminal` invariant then audits that every
/// `req.issued` id on every rank reached `req.completed` or `req.failed`.
fn run_async_setup(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::instance::MpiProcess;
    use mpi_sessions_repro::mpi::SetupRequest;
    use std::sync::mpsc;

    const BATCH1: usize = 4; // pipelined constructs under delay faults
    const BATCH2: usize = 3; // constructs the kill aborts mid-flight
    const VICTIM: u32 = 3;
    let plan = FaultPlan::new(
        seed,
        vec![
            FaultRule::new(
                FaultClass::Partition,
                RuleScope::pair_within(1, 3).and_crossing(vec![0], vec![1]),
                SeqWindow::first(1),
            ),
            FaultRule::new(
                FaultClass::Delay,
                RuleScope::pair_within(1, 3),
                SeqWindow::first(2),
            )
            .with_delay_ms(15),
        ],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-async-{seed}");
    let (tx, rx) = mpsc::channel::<(u32, &'static str)>();
    let handle = world.launcher().spawn_named(&nspace, JobSpec::new(4), move |ctx| {
        let all = all_procs(&ctx);
        // Warm-up barrier absorbs the partition: retry until it heals.
        let mut attempts = 0u32;
        loop {
            match ctx.pmix().fence_timeout(&all, false, Duration::from_millis(1200)) {
                Ok(()) => break,
                Err(_) => {
                    attempts += 1;
                    assert!(attempts < 5, "partition never healed");
                }
            }
        }
        assert!(attempts >= 1, "the partition must bite at least once");
        // This scenario asserts *eager* construct semantics — a group
        // construct with a dead member must fail at construct time. Pin
        // the mode so the ci.sh INIT_MODE=lazy sweep (where constructs
        // are local and failure surfaces on first send instead) doesn't
        // change what it tests.
        use mpi_sessions_repro::mpi::info::keys;
        let info = Info::new();
        info.set(keys::INIT_MODE, "eager");
        let session =
            Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
        let process = MpiProcess::obtain(&ctx);
        let world_group = session.group_from_pset("mpi://world").unwrap();
        // Batch 1: pipelined constructs whose group stages straddle the
        // delayed inter-server messages; nudge them through the engine
        // once, then claim with wait.
        let reqs: Vec<SetupRequest<Comm>> = (0..BATCH1)
            .map(|i| Comm::icomm_create_from_group(&world_group, &format!("as1-{i}")).unwrap())
            .collect();
        process.progress();
        let comms: Vec<Comm> = reqs.into_iter().map(|r| r.wait().unwrap()).collect();
        assert_eq!(coll::allreduce_t(&comms[0], ReduceOp::Sum, &[1u32]).unwrap()[0], 4);
        for c in comms {
            c.free().unwrap();
        }
        tx.send((ctx.rank(), "batch1")).unwrap();
        // Batch 2: survivors issue constructs *including the victim*, who
        // never contributes — so they cannot complete before the kill
        // lands between their issue and their wait.
        let mut reqs: Vec<SetupRequest<Comm>> = if ctx.rank() == VICTIM {
            Vec::new()
        } else {
            (0..BATCH2)
                .map(|i| {
                    Comm::icomm_create_from_group(&world_group, &format!("as2-{i}")).unwrap()
                })
                .collect()
        };
        tx.send((ctx.rank(), "issued")).unwrap();
        for i in 0..1000 {
            let sg = session.surviving_group("mpi://world").unwrap();
            if sg.iter().all(|m| m.proc.rank() != VICTIM) {
                break;
            }
            assert!(i < 999, "kill never became visible");
            std::thread::sleep(Duration::from_millis(10));
        }
        if ctx.rank() == VICTIM {
            // The victim: its endpoint is dead; bow out without finalize.
            return 0;
        }
        // One in-flight request is dropped — cancellation must drive it to
        // its (Failed) terminal state; the rest surface the abort on wait.
        drop(reqs.pop());
        for r in reqs {
            assert!(r.wait().is_err(), "construct with a dead member must fail");
        }
        // Recovery: a fresh pipelined batch over the survivors completes.
        let sg = session.surviving_group("mpi://world").unwrap();
        let reqs: Vec<SetupRequest<Comm>> = (0..2)
            .map(|i| Comm::icomm_create_from_group(&sg, &format!("as3-{i}")).unwrap())
            .collect();
        let comms: Vec<Comm> = reqs.into_iter().map(|r| r.wait().unwrap()).collect();
        let sum = coll::allreduce_t(&comms[0], ReduceOp::Sum, &[1u32]).unwrap()[0];
        for c in comms {
            c.free().unwrap();
        }
        session.finalize().unwrap();
        sum
    });
    // Both phases acked by all four ranks, then the mid-flight kill.
    for _ in 0..8 {
        rx.recv_timeout(Duration::from_secs(30)).expect("phase ack");
    }
    world.kill_proc(&ProcId::new(nspace.as_str(), VICTIM));
    let out = handle.join().unwrap();
    assert_eq!(out, vec![3, 3, 3, 0], "survivors recover; the victim bows out");
    let obs = world.universe().fabric().obs();
    // Every batch-2 request (waited or dropped) failed; nothing stranded,
    // nothing spuriously cancelled (a failed request has nothing to release).
    assert_eq!(obs.sum_counters("req", "failed"), (BATCH2 * 3) as u64);
    assert_eq!(obs.sum_counters("req", "cancelled"), 0);
    assert_eq!(
        obs.sum_counters("req", "issued"),
        obs.sum_counters("req", "completed") + obs.sum_counters("req", "failed")
    );
    // Ranks diverge at the kill, so skip the symmetric cid-agreement list.
    let report = world.finish(None, Vec::new());
    assert!(report
        .trace
        .iter()
        .all(|r| matches!(r.class, FaultClass::Partition | FaultClass::Delay)));
    report.assert_clean();
    report
}

/// Lazy init: fence-free sessions under a delayed control plane, plus a
/// graceful retirement mid-run. Every on-demand peer resolution crosses
/// the delayed server↔server dmodex path and must still terminate; a
/// post-retirement send to the departed rank must fail *typed* (its
/// business card is purged, so the resolver reports the failure instead
/// of handing out a dangling endpoint). The `lazy-resolve-terminal`
/// invariant then audits that every `begin` on every rank reached an
/// `end` with outcome `resolved` or `failed`.
fn run_lazy_init(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::info::keys;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc};

    const PSET: &str = "app://chaos-lazy";
    const RETIREE: u32 = 3;
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(20)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-lazy-{seed}");
    let (tx, rx) = mpsc::channel::<u32>();
    let retired_flag = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&retired_flag);
    let ns = nspace.clone();
    let handle = world.launcher().spawn_named(
        &nspace,
        JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]),
        move |ctx| {
            let info = Info::new();
            info.set(keys::INIT_MODE, "lazy");
            let session =
                Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
            assert!(session.is_lazy());
            let g = session.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "lazy-chaos").unwrap();
            // Ring exchange only — no allreduce — so rank 1 never touches
            // rank 3: its route to the retiree stays unresolved, which is
            // exactly what the post-retirement probe below needs. The two
            // cross-node hops (1→2 and 3→0) force active resolutions whose
            // dmodex traffic rides the delayed server pair.
            let np = c.size();
            let right = (ctx.rank() + 1) % np;
            let left = (ctx.rank() + np - 1) % np;
            let payload = vec![ctx.rank() as u8; 4];
            let (got, _) = c.sendrecv(right, 7, &payload, left as i32, 7).unwrap();
            assert_eq!(got, vec![left as u8; 4]);
            tx.send(ctx.rank()).unwrap();
            if ctx.rank() == RETIREE {
                // The retiree leaves gracefully: local teardown, then the
                // driver's retire_ranks joins this thread and purges its
                // KVS business card from every server shard.
                c.free().unwrap();
                session.finalize().unwrap();
                return 1u32;
            }
            while !flag.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(5));
            }
            if ctx.rank() == 1 {
                // First contact with the departed rank: the lazy resolve
                // must fail typed — card purged, no dangling endpoint.
                let err = c.send(RETIREE, 9, b"late").unwrap_err();
                let msg = err.to_string();
                assert!(
                    msg.contains(&format!("{ns}:{RETIREE}")),
                    "failure must name the departed peer, got: {msg}"
                );
            }
            c.free().unwrap();
            session.finalize().unwrap();
            1u32
        },
    );
    let ctl = handle.ctl();
    for _ in 0..4 {
        rx.recv_timeout(Duration::from_secs(30)).expect("ring ack");
    }
    let retired = ctl.retire_ranks(&[RETIREE], Some(PSET)).unwrap();
    assert_eq!(retired, vec![1]);
    retired_flag.store(true, Ordering::Release);
    let out = handle.join().unwrap();
    assert_eq!(out, vec![1, 1, 1], "all survivors complete the lazy run");

    let obs = world.universe().fabric().obs();
    // Fence-free means fence-free, faults or not: no collective setup ran.
    assert_eq!(obs.sum_counters("pmix", "fence_completed"), 0);
    assert_eq!(obs.sum_counters("pmix", "group_construct_completed"), 0);
    assert_eq!(obs.sum_counters("pmix", "stage_fanin"), 0);
    assert_eq!(obs.sum_counters("pmix", "stage_fanout"), 0);
    // Resolution went through the KVS, and the retirement purged it.
    assert!(obs.sum_counters("pmix", "lazy_gets") > 0, "active resolution happened");
    assert!(obs.sum_counters("pmix", "kvs_purged") > 0, "retirement purged the card");
    // The probe's resolution terminated with a typed failure.
    assert!(
        obs.events_named("pml.lazy_resolve")
            .iter()
            .any(|e| e.attr("outcome").and_then(|v| v.as_str()) == Some("failed")),
        "the post-retirement resolve must end failed"
    );
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert!(!report.trace.is_empty(), "the dmodex path must cross the delay rule");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Delay && r.detail == 20));
    report.assert_clean();
    report
}

/// Correlated kills: two ranks on *different nodes* die back-to-back while
/// every survivor holds a tracked faults pset and a fault watcher. The
/// live watcher sees both deaths, a watcher attached after the burst
/// replays exactly both (never more), the faults pset settles on the two
/// survivors, and an epoch-pinned [`Comm::repair_via_pset`] rebuilds a
/// working communicator over them. The `survivors-exclude-dead` invariant
/// then audits that neither corpse is still listed at run end.
fn run_correlated_kills(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::info::keys;
    use mpi_sessions_repro::mpi::instance::MpiProcess;
    use std::sync::mpsc;
    use std::time::Instant;

    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(15)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-corr-{seed}");
    let (tx, rx) = mpsc::channel::<u32>();
    let handle = world.launcher().spawn_named(&nspace, JobSpec::new(4), move |ctx| {
        // Eager construct semantics are what the repair path exercises;
        // pin the mode so the ci.sh INIT_MODE=lazy sweep doesn't change it.
        let info = Info::new();
        info.set(keys::INIT_MODE, "eager");
        let session =
            Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
        let pset = session.track_faults().unwrap();
        let mut faults = session.watch_faults().unwrap();
        let g = session.group_from_pset("mpi://world").unwrap();
        let c = Comm::create_from_group(&g, "pre-corr").unwrap();
        assert_eq!(coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0], 4);
        tx.send(ctx.rank()).unwrap();
        if ctx.rank() % 2 == 1 {
            // The victims (rank 1 on node 0, rank 3 on node 1): wait for
            // the own death to become globally visible, then bow out.
            for i in 0..1000 {
                let sg = session.surviving_group("mpi://world").unwrap();
                if sg.iter().all(|m| m.proc.rank() != ctx.rank()) {
                    return 0;
                }
                assert!(i < 999, "victim never observed its own failure");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        // Survivors: the correlated burst arrives on the live watcher...
        let mut dead = vec![
            faults.next_timeout(Duration::from_secs(10)).expect("first fault").rank(),
            faults.next_timeout(Duration::from_secs(10)).expect("second fault").rank(),
        ];
        dead.sort_unstable();
        assert_eq!(dead, vec![1, 3]);
        // ...and a late subscriber replays exactly the burst, once.
        let mut late = session.watch_faults().unwrap();
        let mut replay = vec![
            late.next_timeout(Duration::from_secs(5)).expect("first replay").rank(),
            late.next_timeout(Duration::from_secs(5)).expect("second replay").rank(),
        ];
        replay.sort_unstable();
        assert_eq!(replay, vec![1, 3]);
        assert!(late.try_next().is_none(), "replay is exactly-once");
        // The faults pset settles on the two survivors; pin its epoch and
        // repair the broken communicator over it.
        let registry = MpiProcess::obtain(&ctx).universe().registry().clone();
        let deadline = Instant::now() + Duration::from_secs(10);
        let epoch = loop {
            let (e, m) = registry.pset_members_versioned(&pset).unwrap();
            if m.len() == 2 {
                break e;
            }
            assert!(Instant::now() < deadline, "faults pset never settled on the survivors");
            std::thread::sleep(Duration::from_millis(10));
        };
        let repaired = c.repair_via_pset(&session, &pset, epoch).unwrap();
        assert_eq!(repaired.size(), 2);
        let sum = coll::allreduce_t(&repaired, ReduceOp::Sum, &[1u32]).unwrap()[0];
        assert_eq!(sum, 2);
        repaired.free().unwrap();
        // `c` still names the dead ranks: its teardown cannot be
        // collective anymore, so it is dropped, not freed.
        session.finalize().unwrap();
        sum
    });
    for _ in 0..4 {
        rx.recv_timeout(Duration::from_secs(30)).expect("warm ack");
    }
    world.kill_proc(&ProcId::new(nspace.as_str(), 1));
    world.kill_proc(&ProcId::new(nspace.as_str(), 3));
    let out = handle.join().unwrap();
    assert_eq!(out, vec![2, 0, 2, 0], "survivors repair; victims bow out");
    // Survivors and victims legitimately diverge in cid counters.
    let report = world.finish(None, Vec::new());
    assert!(!report.trace.is_empty(), "the warm construct must cross the delay rule");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Delay && r.detail == 15));
    report.assert_clean();
    report
}

/// Partition during rebuild: the first server↔server crossing message in
/// each direction is lost exactly when the elastic establish fans in
/// across both nodes. With the construct deadline lowered through the
/// `pmix.group_timeout_ms` cvar, both servers abort fast, every rank gets
/// a typed `Timeout`, and the rebuild loop retries the *same* epoch — the
/// partition window is spent, so the retry lands and the job completes.
fn run_partition_rebuild(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::info::keys;
    use mpi_sessions_repro::mpi::{ElasticComm, Rebuild};
    use mpi_sessions_repro::obs::CvarValue;
    use std::sync::mpsc;

    const PSET: &str = "app://chaos-pr";
    const STEP: Duration = Duration::from_secs(20);
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Partition,
            RuleScope::pair_within(1, 3).and_crossing(vec![0], vec![1]),
            SeqWindow::first(1),
        )],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    // Trade the forgiving default construct deadline for a fast typed
    // Timeout — this is the `pmix.group_timeout_ms` cvar exercised end to
    // end: written here, read by every rank's construct directives.
    world
        .universe()
        .fabric()
        .obs()
        .cvar_write("universe", "pmix.group_timeout_ms", CvarValue::U64(800))
        .unwrap();
    let nspace = format!("chaos-pr-{seed}");
    let (tx, rx) = mpsc::channel::<(u32, u64, u32)>();
    let handle = world.launcher().spawn_named(
        &nspace,
        JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]),
        move |ctx| {
            // A lazy construct is local and would never cross the cut; pin
            // eager so the INIT_MODE=lazy sweep keeps testing the retry.
            let info = Info::new();
            info.set(keys::INIT_MODE, "eager");
            let session =
                Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
            // The establish *is* the partitioned rebuild: its fan-in is the
            // first traffic crossing the server pair, so each direction's
            // opening message is dropped, the construct times out, and the
            // inner retry (same epoch) goes through.
            let mut ec = ElasticComm::establish(&session, PSET, STEP).unwrap();
            loop {
                let comm = ec.comm().expect("member has a communicator");
                let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
                tx.send((ctx.rank(), ec.epoch(), sum)).unwrap();
                match ec.next_rebuild(STEP) {
                    Ok(Rebuild::Rebuilt { .. }) => continue,
                    Ok(Rebuild::Retired { .. }) | Ok(Rebuild::Deleted { .. }) => break,
                    Err(e) => panic!("rank {} rebuild failed: {e}", ctx.rank()),
                }
            }
            session.finalize().unwrap();
            ctx.rank()
        },
    );
    for _ in 0..4 {
        let (rank, epoch, sum) = rx.recv_timeout(STEP).expect("ack before timeout");
        assert_eq!((epoch, sum), (1, 4), "rank {rank} at wrong epoch/membership");
    }
    world.universe().registry().undefine_pset(PSET);
    let out = handle.join().unwrap();
    assert_eq!(out.len(), 4);
    let obs = world.universe().fabric().obs();
    assert!(
        obs.sum_counters("session", "rebuild_retries") >= 1,
        "the partition must force at least one timed-out attempt"
    );
    let cid = rank_processes(&world, 0..4);
    let report = world.finish(None, cid);
    assert_eq!(report.trace.len(), 2, "one dropped crossing per direction");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Partition && r.pair_seq == 0));
    report.assert_clean();
    report
}

/// Kill during lazy resolve: a fence-free job loses a rank whose route
/// some peers never resolved. A survivor's first contact with the corpse
/// must fail *typed* at the resolver — the dead set vetoes the cached or
/// fetched card — and the `lazy-resolve-terminal` invariant audits that
/// the resolution ended `failed`, not parked. Late fault subscription
/// replays the death exactly once.
fn run_kill_lazy_resolve(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::instance::MpiProcess;
    use mpi_sessions_repro::mpi::info::keys;
    use mpi_sessions_repro::mpi::ErrClass;
    use std::sync::mpsc;

    const VICTIM: u32 = 3;
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(20)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-lazykill-{seed}");
    let (tx, rx) = mpsc::channel::<u32>();
    let ns = nspace.clone();
    let handle = world.launcher().spawn_named(&nspace, JobSpec::new(4), move |ctx| {
        let info = Info::new();
        info.set(keys::INIT_MODE, "lazy");
        let session =
            Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
        assert!(session.is_lazy());
        let g = session.group_from_pset("mpi://world").unwrap();
        let c = Comm::create_from_group(&g, "lazy-kill").unwrap();
        // Ring exchange only: rank 1 never touches rank 3, so its route to
        // the victim stays unresolved — the post-kill probe below is a
        // *fresh* resolution against a dead peer. The cross-node hops ride
        // the delayed dmodex path.
        let np = c.size();
        let right = (ctx.rank() + 1) % np;
        let left = (ctx.rank() + np - 1) % np;
        let payload = vec![ctx.rank() as u8; 4];
        let (got, _) = c.sendrecv(right, 7, &payload, left as i32, 7).unwrap();
        assert_eq!(got, vec![left as u8; 4]);
        tx.send(ctx.rank()).unwrap();
        if ctx.rank() == VICTIM {
            // The victim: wait out the own death, then bow out (no
            // finalize — the runtime already considers this process gone).
            for i in 0..1000 {
                let sg = session.surviving_group("mpi://world").unwrap();
                if sg.iter().all(|m| m.proc.rank() != VICTIM) {
                    return 0u32;
                }
                assert!(i < 999, "victim never observed its own failure");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        // Survivors: the death arrives live, and a late watcher replays it
        // exactly once.
        let mut faults = session.watch_faults().unwrap();
        assert_eq!(
            faults.next_timeout(Duration::from_secs(10)).expect("live fault").rank(),
            VICTIM
        );
        let mut late = session.watch_faults().unwrap();
        assert_eq!(
            late.next_timeout(Duration::from_secs(5)).expect("replayed fault").rank(),
            VICTIM
        );
        assert!(late.try_next().is_none(), "replay is exactly-once");
        if ctx.rank() == 1 {
            // Deterministically exercise the server-side dead set (the
            // fabric watcher can outrun the failure bridge): wait until
            // the servers know, then probe. The fresh lazy resolution must
            // end `failed` with a typed error, not hand out a dead card.
            let universe = MpiProcess::obtain(&ctx).universe().clone();
            let victim = mpi_sessions_repro::pmix::ProcId::new(ns.as_str(), VICTIM);
            for i in 0..1000 {
                if universe.proc_is_dead(&victim) {
                    break;
                }
                assert!(i < 999, "servers never marked the victim dead");
                std::thread::sleep(Duration::from_millis(10));
            }
            let err = c.send(VICTIM, 9, b"late").unwrap_err();
            assert!(
                matches!(err.class, ErrClass::ProcFailed | ErrClass::ProcTerminated),
                "probe to the corpse must fail typed, got: {err}"
            );
        }
        // The comm names the dead rank: drop, not free.
        session.finalize().unwrap();
        1u32
    });
    for _ in 0..4 {
        rx.recv_timeout(Duration::from_secs(30)).expect("ring ack");
    }
    world.kill_proc(&ProcId::new(nspace.as_str(), VICTIM));
    let out = handle.join().unwrap();
    assert_eq!(out, vec![1, 1, 1, 0], "survivors complete; the victim bows out");

    let obs = world.universe().fabric().obs();
    // Fence-free means fence-free, kills or not: no collective setup ran.
    assert_eq!(obs.sum_counters("pmix", "fence_completed"), 0);
    assert!(obs.sum_counters("pmix", "lazy_gets") > 0, "active resolution happened");
    // The probe's resolution terminated with a typed failure.
    assert!(
        obs.events_named("pml.lazy_resolve")
            .iter()
            .any(|e| e.attr("outcome").and_then(|v| v.as_str()) == Some("failed")),
        "the post-kill resolve must end failed"
    );
    let report = world.finish(None, Vec::new());
    assert!(!report.trace.is_empty(), "the dmodex path must cross the delay rule");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Delay && r.detail == 20));
    report.assert_clean();
    report
}

/// Cascading rebuilds racing new faults: both kills land before the
/// survivors run their rebuild, so the first queued membership event still
/// names an already-dead member. The rebuild pinned to that epoch must
/// fail typed and *re-enter* the event loop (`rebuild_reentered`), landing
/// on the next epoch's membership — never stall, never surface a terminal
/// error. The tracked faults pset keeps the `survivors-exclude-dead`
/// invariant in play across the cascade.
fn run_cascade_rebuild(seed: u64) -> RunReport {
    use mpi_sessions_repro::mpi::info::keys;
    use mpi_sessions_repro::mpi::{ElasticComm, Rebuild};
    use std::sync::mpsc;

    const PSET: &str = "app://chaos-cascade";
    let plan = FaultPlan::new(
        seed,
        vec![FaultRule::new(
            FaultClass::Delay,
            RuleScope::pair_within(1, 3),
            SeqWindow::first(2),
        )
        .with_delay_ms(15)],
    );
    let world = ChaosWorld::new(SimTestbed::tiny(2, 2), plan);
    let nspace = format!("chaos-cascade-{seed}");
    let (tx, rx) = mpsc::channel::<u32>();
    let handle = world.launcher().spawn_named(
        &nspace,
        JobSpec::new(4).with_pset(PSET, vec![0, 1, 2, 3]),
        move |ctx| {
            // The re-enter path is an eager construct failing typed on a
            // dead member; pin the mode against the INIT_MODE=lazy sweep.
            let info = Info::new();
            info.set(keys::INIT_MODE, "eager");
            let session =
                Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &info).unwrap();
            session.track_faults().unwrap();
            let mut ec =
                ElasticComm::establish(&session, PSET, Duration::from_secs(10)).unwrap();
            assert_eq!(coll::allreduce_t(ec.comm().unwrap(), ReduceOp::Sum, &[1u32]).unwrap()[0], 4);
            tx.send(ctx.rank()).unwrap();
            if ctx.rank() >= 2 {
                // The victims: wait out the own death, then bow out.
                for i in 0..1000 {
                    let sg = session.surviving_group("mpi://world").unwrap();
                    if sg.iter().all(|m| m.proc.rank() != ctx.rank()) {
                        return 0u32;
                    }
                    assert!(i < 999, "victim never observed its own failure");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            // Hold the rebuild until BOTH deaths are known, so the cascade
            // is guaranteed: the epoch pinned by the first membership event
            // still includes a member that is already dead.
            let mut faults = session.watch_faults().unwrap();
            let mut dead = vec![
                faults.next_timeout(Duration::from_secs(10)).expect("first fault").rank(),
                faults.next_timeout(Duration::from_secs(10)).expect("second fault").rank(),
            ];
            dead.sort_unstable();
            assert_eq!(dead, vec![2, 3]);
            match ec.next_rebuild(Duration::from_secs(20)).unwrap() {
                Rebuild::Rebuilt { .. } => {}
                other => panic!("expected a rebuild over the survivors, got {other:?}"),
            }
            let comm = ec.comm().expect("rebuilt communicator");
            assert_eq!(comm.size(), 2);
            let sum = coll::allreduce_t(comm, ReduceOp::Sum, &[1u32]).unwrap()[0];
            drop(ec);
            session.finalize().unwrap();
            sum
        },
    );
    for _ in 0..4 {
        rx.recv_timeout(Duration::from_secs(30)).expect("warm ack");
    }
    world.kill_proc(&ProcId::new(nspace.as_str(), 3));
    world.kill_proc(&ProcId::new(nspace.as_str(), 2));
    let out = handle.join().unwrap();
    assert_eq!(out, vec![2, 2, 0, 0], "survivors land on the cascaded epoch");
    let obs = world.universe().fabric().obs();
    assert!(
        obs.sum_counters("session", "rebuild_reentered") >= 1,
        "at least one survivor re-entered the rebuild loop"
    );
    let report = world.finish(None, Vec::new());
    assert!(!report.trace.is_empty(), "the warm construct must cross the delay rule");
    assert!(report.trace.iter().all(|r| r.class == FaultClass::Delay && r.detail == 15));
    report.assert_clean();
    report
}

type Scenario = fn(u64) -> RunReport;

const SCENARIOS: &[(&str, Scenario)] = &[
    ("drop", run_drop),
    ("delay", run_delay),
    ("duplicate", run_duplicate),
    ("kill", run_kill),
    ("partition", run_partition),
    ("elastic", run_elastic),
    ("soak", run_soak),
    ("async_setup", run_async_setup),
    ("lazy_init", run_lazy_init),
    ("correlated_kills", run_correlated_kills),
    ("partition_rebuild", run_partition_rebuild),
    ("kill_lazy_resolve", run_kill_lazy_resolve),
    ("cascade_rebuild", run_cascade_rebuild),
];

// ---------------------------------------------------------------------------
// Pinned-seed sweeps: ≥20 seeds total, ≥1 per fault class.
// ---------------------------------------------------------------------------

#[test]
fn drop_seeds_fail_fast_and_recover_by_retry() {
    for seed in [11, 12, 13, 14, 15] {
        run_drop(seed);
    }
}

#[test]
fn delay_seeds_are_absorbed_without_errors() {
    for seed in [21, 22, 23, 24, 25] {
        run_delay(seed);
    }
}

#[test]
fn duplicate_seeds_are_deduplicated_by_idempotent_contributions() {
    for seed in [31, 32, 33, 34] {
        run_duplicate(seed);
    }
}

#[test]
fn kill_seeds_recover_by_session_reinit() {
    for seed in [41, 42, 43, 44, 45] {
        run_kill(seed);
    }
}

#[test]
fn partition_seeds_heal_and_complete() {
    for seed in [51, 52, 53, 54] {
        run_partition(seed);
    }
}

#[test]
fn elastic_seeds_rebuild_through_churn() {
    for seed in [61, 62, 63, 64] {
        run_elastic(seed);
    }
}

#[test]
fn soak_seeds_churn_leak_free_through_faults() {
    for seed in [81, 82, 83, 84] {
        run_soak(seed);
    }
}

#[test]
fn async_setup_seeds_terminate_every_request() {
    for seed in [91, 92, 93, 94] {
        run_async_setup(seed);
    }
}

#[test]
fn lazy_init_seeds_resolve_through_delays_and_fail_typed_after_retire() {
    for seed in [71, 72, 73, 74] {
        run_lazy_init(seed);
    }
}

#[test]
fn correlated_kill_seeds_replay_once_and_repair() {
    for seed in [101, 102, 103] {
        run_correlated_kills(seed);
    }
}

#[test]
fn partition_rebuild_seeds_retry_the_timed_out_epoch() {
    for seed in [111, 112, 113] {
        run_partition_rebuild(seed);
    }
}

#[test]
fn kill_lazy_resolve_seeds_fail_typed_at_the_resolver() {
    for seed in [121, 122, 123] {
        run_kill_lazy_resolve(seed);
    }
}

#[test]
fn cascade_rebuild_seeds_reenter_to_the_newer_epoch() {
    for seed in [131, 132, 133] {
        run_cascade_rebuild(seed);
    }
}

// ---------------------------------------------------------------------------
// Reproducibility: the same seed yields a byte-identical fault trace.
// ---------------------------------------------------------------------------

#[test]
fn same_seed_reproduces_byte_identical_traces() {
    for (name, scenario) in SCENARIOS {
        let seed = 1000 + *name.as_bytes().first().unwrap() as u64;
        let first = scenario(seed);
        let second = scenario(seed);
        assert!(!first.trace_json.is_empty());
        assert_eq!(
            first.trace_json, second.trace_json,
            "scenario {name} seed {seed} must reproduce its fault trace byte-for-byte"
        );
    }
}

// ---------------------------------------------------------------------------
// Operator knobs: CHAOS_SEEDS=1,2,3 widens the sweep without recompiling;
// CHAOS_SCENARIOS=elastic,kill narrows it to the named scenarios (ci.sh
// uses this to sweep the elastic churn scenario under its pinned seeds).
// ---------------------------------------------------------------------------

#[test]
fn chaos_seeds_env_extends_the_sweep() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return; // knob unset: covered by the pinned sweeps above
    };
    let filter = std::env::var("CHAOS_SCENARIOS").ok();
    let wanted: Vec<&str> = filter
        .as_deref()
        .map(|f| f.split(',').map(str::trim).filter(|t| !t.is_empty()).collect())
        .unwrap_or_default();
    for name in &wanted {
        assert!(
            SCENARIOS.iter().any(|(n, _)| n == name),
            "CHAOS_SCENARIOS names an unknown scenario {name:?}"
        );
    }
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed: u64 = token
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEEDS entries must be u64s, got {token:?}"));
        for (name, scenario) in SCENARIOS {
            if !wanted.is_empty() && !wanted.contains(name) {
                continue;
            }
            eprintln!("chaos: extra seed {seed} on scenario {name}");
            scenario(seed);
        }
    }
}
