//! Cross-crate integration: the full stack (simnet → pmix → prrte → mpi →
//! quo → apps) exercised through realistic end-to-end scenarios.

use mpi_sessions_repro::mpi::{
    coll, Comm, ErrHandler, Info, ReduceOp, Session, ThreadLevel,
};
use mpi_sessions_repro::prrte::{JobSpec, Launcher, MapBy};
use mpi_sessions_repro::quo::{Quo, QuoBackend};
use mpi_sessions_repro::simnet::SimTestbed;
use std::time::Duration;

#[test]
fn whole_stack_figure1_on_jupiter_cost_model() {
    // Same as the quickstart but over the *costed* Jupiter model: injected
    // inter-node latency and the head-node RM must not change semantics.
    let mut tb = SimTestbed::jupiter(2);
    tb.cluster.slots_per_node = 2;
    let launcher = Launcher::new(tb);
    let out = launcher
        .spawn(JobSpec::new(4), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            let c = Comm::create_from_group(&g, "jup").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u32]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![4; 4]);
}

#[test]
fn map_by_node_changes_shared_pset_shape() {
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let out = launcher
        .spawn(JobSpec::new(4).map_by(MapBy::Node), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let shared = s.group_from_pset("mpi://shared").unwrap();
            let ranks: Vec<u32> =
                shared.iter().map(|m| m.proc.rank()).collect();
            s.finalize().unwrap();
            ranks
        })
        .join()
        .unwrap();
    // Round-robin: node 0 holds ranks {0,2}, node 1 holds {1,3}.
    assert_eq!(out[0], vec![0, 2]);
    assert_eq!(out[1], vec![1, 3]);
}

#[test]
fn sessions_and_wpm_interleave_across_many_cycles() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 2));
    launcher
        .spawn(JobSpec::new(2), |ctx| {
            // WPM once (per MPI-3), sessions many times, interleaved use.
            let world = mpi_sessions_repro::mpi::world::init(&ctx).unwrap();
            for i in 0..4 {
                let s =
                    Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                        .unwrap();
                let g = s.group_from_pset("mpi://world").unwrap();
                let c = Comm::create_from_group(&g, &format!("inter{i}")).unwrap();
                let a = coll::allreduce_t(world.comm(), ReduceOp::Sum, &[1u32]).unwrap()[0];
                let b = coll::allreduce_t(&c, ReduceOp::Sum, &[10u32]).unwrap()[0];
                assert_eq!((a, b), (2, 20));
                c.free().unwrap();
                s.finalize().unwrap();
            }
            world.finalize().unwrap();
        })
        .join()
        .unwrap();
}

#[test]
fn two_jobs_share_one_dvm_without_interference() {
    // Two independent MPI jobs on one universe (the DVM model): separate
    // namespaces, separate world psets, concurrent communication.
    let launcher = Launcher::new(SimTestbed::tiny(2, 4));
    let job = |tag: &'static str| {
        move |ctx: prrte::ProcCtx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();
            assert_eq!(g.size(), 3);
            let c = Comm::create_from_group(&g, tag).unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[ctx.rank() as u64]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        }
    };
    let h1 = launcher.spawn(JobSpec::new(3), job("j1"));
    let h2 = launcher.spawn(JobSpec::new(3), job("j2"));
    assert_eq!(h1.join().unwrap(), vec![3; 3]);
    assert_eq!(h2.join().unwrap(), vec![3; 3]);
}

#[test]
fn quo_sessions_full_stack_with_costed_fabric() {
    let mut tb = SimTestbed::trinity(2);
    tb.cluster.slots_per_node = 2;
    let launcher = Launcher::new(tb);
    launcher
        .spawn(JobSpec::new(4), |ctx| {
            let world = mpi_sessions_repro::mpi::world::init_thread(
                &ctx,
                ThreadLevel::Funneled,
            )
            .unwrap();
            let quo = Quo::create(&ctx, QuoBackend::Sessions).unwrap();
            for _ in 0..3 {
                quo.barrier().unwrap();
                coll::barrier(world.comm()).unwrap();
            }
            quo.free().unwrap();
            world.finalize().unwrap();
        })
        .join()
        .unwrap();
}

#[test]
fn windows_and_files_compose_with_sessions() {
    let launcher = Launcher::new(SimTestbed::tiny(1, 3));
    launcher
        .spawn(JobSpec::new(3), |ctx| {
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let g = s.group_from_pset("mpi://world").unwrap();

            // RMA: everyone publishes its rank, neighbors read it.
            let win =
                mpi_sessions_repro::mpi::win::Win::allocate_from_group(&g, "itw", 8).unwrap();
            win.write_local(0, &[ctx.rank() as u8]).unwrap();
            win.fence().unwrap();
            let next = (ctx.rank() + 1) % 3;
            let h = win.get(next, 0, 1).unwrap();
            win.fence().unwrap();
            assert_eq!(h.result().unwrap(), vec![next as u8]);
            win.free().unwrap();

            // File: strided collective write, verify on rank 0.
            let f = mpi_sessions_repro::mpi::file::MpiFile::open_from_group(
                &g,
                "itf",
                "integration-shared-file",
                mpi_sessions_repro::mpi::file::FileMode::ReadWrite,
            )
            .unwrap();
            f.write_at_all(ctx.rank() as usize * 2, &[ctx.rank() as u8; 2]).unwrap();
            let data = f.read_at_all(0, 6).unwrap();
            assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
            f.close().unwrap();
            s.finalize().unwrap();
            if ctx.rank() == 0 {
                mpi_sessions_repro::mpi::file::delete("integration-shared-file");
            }
        })
        .join()
        .unwrap();
}

#[test]
fn pmix_async_group_flows_into_mpi_comm() {
    // Extension path: an asynchronously constructed (invite/join) PMIx
    // group's membership drives an MPI communicator via a later collective
    // construct over exactly those members.
    let launcher = Launcher::new(SimTestbed::tiny(2, 2));
    let out = launcher
        .spawn(JobSpec::new(4), |ctx| {
            use mpi_sessions_repro::pmix::{EventCode, GroupDirectives, ProcId};
            let nspace = ctx.proc().nspace().to_owned();
            let is_initiator = ctx.rank() == 0;
            let events = ctx.pmix().register_events(Some(vec![EventCode::GroupInvited]));
            // Invitations are only delivered to *registered* listeners:
            // fence so every rank has subscribed before the invite goes out.
            let all: Vec<ProcId> =
                (0..ctx.size()).map(|r| ProcId::new(nspace.as_str(), r)).collect();
            ctx.pmix().fence(&all, false).unwrap();
            let joined_members: Vec<ProcId> = if is_initiator {
                let invited: Vec<ProcId> =
                    (1..3).map(|r| ProcId::new(nspace.as_str(), r)).collect();
                ctx.pmix()
                    .group_invite("async-mpi", &invited, &GroupDirectives::for_mpi())
                    .unwrap();
                let g = ctx
                    .pmix()
                    .group_invite_wait("async-mpi", Duration::from_secs(20))
                    .unwrap();
                g.members().to_vec()
            } else if ctx.rank() < 3 {
                let ev = events.next_timeout(Duration::from_secs(20)).expect("invited");
                let inviter = ev.source.clone().unwrap();
                ctx.pmix().group_join("async-mpi", &inviter, true).unwrap();
                // Learn the final membership out of band (deterministic here).
                (0..3).map(|r| ProcId::new(nspace.as_str(), r)).collect()
            } else {
                Vec::new() // rank 3 is not part of the dynamic group
            };

            if joined_members.is_empty() {
                return 0u64;
            }
            // Build an MPI communicator over the dynamic membership.
            let s = Session::init(&ctx, ThreadLevel::Single, ErrHandler::Return, &Info::null())
                .unwrap();
            let world = s.group_from_pset("mpi://world").unwrap();
            let ranks: Vec<usize> =
                joined_members.iter().map(|m| m.rank() as usize).collect();
            let sub = world.incl(&ranks).unwrap();
            let c = Comm::create_from_group(&sub, "from-async").unwrap();
            let sum = coll::allreduce_t(&c, ReduceOp::Sum, &[1u64]).unwrap()[0];
            c.free().unwrap();
            s.finalize().unwrap();
            sum
        })
        .join()
        .unwrap();
    assert_eq!(out, vec![3, 3, 3, 0]);
}
