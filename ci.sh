#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, lint-clean clippy.
# Everything runs with --offline against the vendored dependency shims in
# vendor/ (this container has no network; see CHANGES.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "CI OK"
