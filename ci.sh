#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, lint-clean clippy.
# Everything runs with --offline against the vendored dependency shims in
# vendor/ (this container has no network; see CHANGES.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Doc gate: the public APIs of the PMIx substrate, the MPI core and the
# observability/tooling layer must document cleanly (broken intra-doc
# links, missing docs on public items, and invalid doctests all fail the
# build).
echo "== cargo doc -D warnings (pmix, mpi-sessions, obs) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps -p pmix -p mpi-sessions -p obs

# Golden-trace gate: a fixed-size fig3_init run must produce a trace report
# that (a) validates against the checked-in schema subset and (b) yields the
# exact committed critical-path stage ordering. Trace reports are derived
# from logical clocks and work counters only, so this is byte-stable; cost
# drift is allowed, stage reordering or disappearance is not.
echo "== golden trace (fig3_init @ 2 nodes x 2 ppn) =="
trace_tmp="$(mktemp -t trace_ci.XXXXXX.json)"
cargo run -q --offline --release -p bench-harness --bin fig3_init -- \
  --nodes 2 --ppn-list 2 --reps 1 --trace-out "$trace_tmp" >/dev/null
cargo run -q --offline --release -p bench-harness --bin trace_check -- \
  "$trace_tmp" --schema ci/trace_schema.json 2>/dev/null \
  | diff -u ci/golden_fig3_critical_path.txt -
rm -f "$trace_tmp" "$trace_tmp.flame.txt"

# Second golden: the lazy (fence-free) init critical path. fig_init_scale
# records eager and lazy side by side; the lazy ordering must show the
# session.publish tail and no group.fanin/fanout stages (the binary itself
# exits nonzero if lazy fans out or fails to beat eager's path at np>=4).
echo "== golden trace (fig_init_scale eager vs lazy @ 2 nodes x 2 ppn) =="
lazy_tmp="$(mktemp -t lazy_ci.XXXXXX.json)"
cargo run -q --offline --release -p bench-harness --bin fig_init_scale -- \
  --nodes 2 --ppn-list 2 --reps 1 --trace-out "$lazy_tmp" >/dev/null
cargo run -q --offline --release -p bench-harness --bin trace_check -- \
  "$lazy_tmp" --schema ci/trace_schema.json 2>/dev/null \
  | diff -u ci/golden_lazy_critical_path.txt -
rm -f "$lazy_tmp" "$lazy_tmp.flame.txt"

# Async-setup gate: the interleaving test layer for the nonblocking
# request engine. The ProgressDriver harness plus the completion-order
# proptest (8 pinned cases in tests/properties.rs) already ran in the
# workspace pass above; re-running them by name here keeps the layer an
# explicit, individually-diagnosable gate rather than a needle in the
# workspace run.
echo "== async-setup interleaving layer (harness + 8-case proptest) =="
cargo test -q --offline --test async_setup
cargo test -q --offline --test properties prop_async_setup_any_completion_order_agrees

# Chaos gate: the pinned-seed fault-injection sweeps (tests/chaos_suite.rs)
# already ran as part of the workspace test pass above. The elastic churn
# scenario (grow/kill/retire/delete under delayed inter-server traffic),
# the soak scenario (session/comm/pset churn with leak-freedom checks
# after fault-triggered rebuilds) and the async_setup scenario (kill,
# delay and partition landing *between* the stages of in-flight setup
# requests, checked by the request-terminal invariant) additionally run
# here under four pinned seeds via the CHAOS_SEEDS knob, exercising the
# epoch-monotonicity / stale-epoch / rebuild-epoch / resource-lifecycle /
# request-terminal invariants end to end. The four fault-recovery
# scenarios (correlated multi-node kills, a partition biting the rebuild
# fan-in, a kill landing during lazy on-demand resolution, and cascading
# rebuilds racing a second fault) additionally drive the survivors-pset /
# watch_faults / repair_via_pset layer under the survivors-exclude-dead
# invariant.
# Override or extend the lists by exporting CHAOS_SEEDS (comma-separated
# u64s) or CHAOS_SCENARIOS yourself, e.g. CHAOS_SEEDS=90,91 ./ci.sh
echo "== chaos sweep (CHAOS_SEEDS=${CHAOS_SEEDS:-71,72,73,74} CHAOS_SCENARIOS=${CHAOS_SCENARIOS:-elastic,soak,async_setup,lazy_init,correlated_kills,partition_rebuild,kill_lazy_resolve,cascade_rebuild}) =="
CHAOS_SEEDS="${CHAOS_SEEDS:-71,72,73,74}" \
CHAOS_SCENARIOS="${CHAOS_SCENARIOS:-elastic,soak,async_setup,lazy_init,correlated_kills,partition_rebuild,kill_lazy_resolve,cascade_rebuild}" \
  cargo test -q --offline --test chaos_suite chaos_seeds_env

# Lazy-mode sweep: the same scenario set with the universe default flipped
# to fence-free init (INIT_MODE=lazy, the env knob behind the
# pmix.init_mode cvar). Scenarios that assert eager construct semantics
# pin init_mode=eager in their own session info, so this run proves every
# other scenario — and the lazy-resolve-terminal invariant — stays green
# when lazy is the default, not just when a session opts in.
echo "== chaos sweep under INIT_MODE=lazy =="
INIT_MODE=lazy \
CHAOS_SEEDS="${CHAOS_SEEDS:-71,72,73,74}" \
CHAOS_SCENARIOS="${CHAOS_SCENARIOS:-elastic,soak,async_setup,lazy_init,correlated_kills,partition_rebuild,kill_lazy_resolve,cascade_rebuild}" \
  cargo test -q --offline --test chaos_suite chaos_seeds_env

# Soak gate: a smoke-sized run of the sessions-as-a-service churn harness
# must end with the leak-freedom verdict PASS (all resource levels back to
# the pre-churn baseline), and the same run with tombstone GC disabled must
# demonstrably FAIL — proving the gate actually detects the leak class it
# exists to catch rather than passing vacuously.
echo "== soak smoke (fig_soak --waves 50, plus --no-gc negative) =="
cargo run -q --offline --release -p bench-harness --bin fig_soak -- \
  --waves 50 >/dev/null
if cargo run -q --offline --release -p bench-harness --bin fig_soak -- \
  --waves 50 --no-gc >/dev/null 2>&1; then
  echo "soak negative check failed: --no-gc run should have leaked" >&2
  exit 1
fi
# Abandon variant: every 10th in-flight idup_via_group is dropped instead
# of claimed; collective cancellation must still drain every resource
# level back to the pre-churn baseline.
echo "== soak abandon smoke (fig_soak --waves 50 --abandon) =="
cargo run -q --offline --release -p bench-harness --bin fig_soak -- \
  --waves 50 --abandon >/dev/null

# Introspection gate, two halves. (a) Schema: a live-stack flight-recorder
# dump must validate against the checked-in introspect schema — every
# process, in-flight request, server shard and cvar row carries its
# required typed fields. (b) Failure-path artifact: a chaos run with a
# deliberately-broken invariant (an unresolved canary stall trips
# stall-terminal) must auto-attach a flight-recorder artifact that parses
# and validates the same way — proving a *failing* run always yields a
# usable post-mortem, not just a passing one.
echo "== introspect gate (dump schema + chaos-fail artifact) =="
intro_tmp="$(mktemp -t introspect_ci.XXXXXX.json)"
cargo run -q --offline --release -p bench-harness --bin introspect_dump -- \
  --out "$intro_tmp"
cargo run -q --offline --release -p bench-harness --bin trace_check -- \
  --introspect "$intro_tmp" --schema ci/introspect_schema.json
cargo run -q --offline --release -p bench-harness --bin introspect_dump -- \
  --chaos-fail --out "$intro_tmp" 2>/dev/null
cargo run -q --offline --release -p bench-harness --bin trace_check -- \
  --introspect "$intro_tmp" --schema ci/introspect_schema.json
rm -f "$intro_tmp"

# Perf-regression gate: bench_gate re-runs the fixed workload set and
# diffs its deterministic report (logical critical-path costs, span/stage
# counts, protocol counters — never wall time) against the committed
# baseline. BENCH_TOL sets the per-leaf relative tolerance (default 5%);
# regenerate the baseline after an intentional perf change with
#   cargo run --release -p bench-harness --bin bench_gate -- --out BENCH_PR10.json
# The binary also hard-enforces (exit 2, no tolerance) the PGCID batching
# bound and the nonblocking-overlap bound: 8 concurrent icomms must
# coalesce into strictly fewer pgcid.request round trips — and a strictly
# shorter serialized critical path — than 8 blocking constructs.
echo "== bench gate (tol ${BENCH_TOL:-0.05}) =="
cargo run -q --offline --release -p bench-harness --bin bench_gate -- \
  --check BENCH_PR10.json --tol "${BENCH_TOL:-0.05}"

# Recovery smoke: the checkpoint-free restart drill (apps::recover via
# fig_recover) must survive two injected kills — every survivor finishes
# all steps at the shrunk width, the victims exit Removed, and the
# settle-latency rows land in target/figures/fig_recover.json.
echo "== recovery smoke (fig_recover: 2 kills, checkpoint-free restart) =="
cargo run -q --offline --release -p bench-harness --bin fig_recover -- >/dev/null

# Doc-drift gate: docs/TUNING.md is generated from the live cvar registry
# (cvar_dump --markdown). Regenerate into a temp file and diff — a knob
# added without regenerating the doc (or a doc edited by hand) fails here.
echo "== tuning-doc drift gate (cvar_dump --markdown vs docs/TUNING.md) =="
tuning_tmp="$(mktemp -t tuning_ci.XXXXXX.md)"
cargo run -q --offline --release -p bench-harness --bin cvar_dump -- \
  --markdown --out "$tuning_tmp" 2>/dev/null
diff -u docs/TUNING.md "$tuning_tmp"
rm -f "$tuning_tmp"

echo "CI OK"
