#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, lint-clean clippy.
# Everything runs with --offline against the vendored dependency shims in
# vendor/ (this container has no network; see CHANGES.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Chaos gate: the pinned-seed fault-injection sweeps (tests/chaos_suite.rs)
# already ran as part of the workspace test pass above; rerun the suite
# here only when extra seeds are requested via the CHAOS_SEEDS knob
# (comma-separated u64s), e.g. CHAOS_SEEDS=90,91,92 ./ci.sh
if [[ -n "${CHAOS_SEEDS:-}" ]]; then
  echo "== chaos sweep (CHAOS_SEEDS=${CHAOS_SEEDS}) =="
  cargo test -q --offline --test chaos_suite chaos_seeds_env
fi

echo "CI OK"
