#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, lint-clean clippy.
# Everything runs with --offline against the vendored dependency shims in
# vendor/ (this container has no network; see CHANGES.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Golden-trace gate: a fixed-size fig3_init run must produce a trace report
# that (a) validates against the checked-in schema subset and (b) yields the
# exact committed critical-path stage ordering. Trace reports are derived
# from logical clocks and work counters only, so this is byte-stable; cost
# drift is allowed, stage reordering or disappearance is not.
echo "== golden trace (fig3_init @ 2 nodes x 2 ppn) =="
trace_tmp="$(mktemp -t trace_ci.XXXXXX.json)"
cargo run -q --offline --release -p bench-harness --bin fig3_init -- \
  --nodes 2 --ppn-list 2 --reps 1 --trace-out "$trace_tmp" >/dev/null
cargo run -q --offline --release -p bench-harness --bin trace_check -- \
  "$trace_tmp" --schema ci/trace_schema.json 2>/dev/null \
  | diff -u ci/golden_fig3_critical_path.txt -
rm -f "$trace_tmp" "$trace_tmp.flame.txt"

# Chaos gate: the pinned-seed fault-injection sweeps (tests/chaos_suite.rs)
# already ran as part of the workspace test pass above; rerun the suite
# here only when extra seeds are requested via the CHAOS_SEEDS knob
# (comma-separated u64s), e.g. CHAOS_SEEDS=90,91,92 ./ci.sh
if [[ -n "${CHAOS_SEEDS:-}" ]]; then
  echo "== chaos sweep (CHAOS_SEEDS=${CHAOS_SEEDS}) =="
  cargo test -q --offline --test chaos_suite chaos_seeds_env
fi

echo "CI OK"
